#include "net/protocol.h"

#include <charconv>

namespace arthas {
namespace net {

namespace {

// Splits `line` on single spaces into at most `max_tokens` tokens; extra
// content past the last requested token stays attached to it (so EXPLAIN's
// four-field argument text survives as one piece when asked for).
std::vector<std::string_view> Tokenize(std::string_view line,
                                       size_t max_tokens) {
  std::vector<std::string_view> tokens;
  size_t pos = 0;
  while (pos < line.size() && tokens.size() < max_tokens) {
    const size_t space = line.find(' ', pos);
    if (space == std::string_view::npos || tokens.size() + 1 == max_tokens) {
      tokens.push_back(line.substr(pos));
      return tokens;
    }
    tokens.push_back(line.substr(pos, space - pos));
    pos = space + 1;
  }
  return tokens;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); i++) {
    const char ca = a[i] >= 'a' && a[i] <= 'z' ? a[i] - 32 : a[i];
    const char cb = b[i] >= 'a' && b[i] <= 'z' ? b[i] - 32 : b[i];
    if (ca != cb) {
      return false;
    }
  }
  return true;
}

bool IsUnsignedNumber(std::string_view s) {
  if (s.empty()) {
    return false;
  }
  for (const char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
  }
  return true;
}

NetCommand MakeError(std::string message) {
  NetCommand cmd;
  cmd.op = NetOp::kError;
  cmd.text = std::move(message);
  return cmd;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (!IsUnsignedNumber(s)) {
    return false;
  }
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return false;
  }
  *out = value;
  return true;
}

// Strips a leading `*<id>[:<origin_ns>] ` trace-context prefix off `line`,
// filling `trace_id`/`origin_ns`. Returns false (leaving the outputs zero)
// when the line starts with '*' but the prefix is malformed — a zero id,
// non-numeric fields, or no command after it.
bool ConsumeTracePrefix(std::string_view* line, uint64_t* trace_id,
                        int64_t* origin_ns) {
  const size_t space = line->find(' ');
  if (space == std::string_view::npos || space == 1) {
    return false;
  }
  std::string_view ctx = line->substr(1, space - 1);
  std::string_view origin;
  const size_t colon = ctx.find(':');
  if (colon != std::string_view::npos) {
    origin = ctx.substr(colon + 1);
    ctx = ctx.substr(0, colon);
  }
  uint64_t id = 0;
  if (!ParseUint64(ctx, &id) || id == 0) {
    return false;
  }
  uint64_t origin_value = 0;
  if (colon != std::string_view::npos &&
      (!ParseUint64(origin, &origin_value) ||
       origin_value > static_cast<uint64_t>(INT64_MAX))) {
    return false;
  }
  *trace_id = id;
  *origin_ns = static_cast<int64_t>(origin_value);
  line->remove_prefix(space + 1);
  return !line->empty();
}

}  // namespace

const char* NetOpName(NetOp op) {
  switch (op) {
    case NetOp::kGet:
      return "GET";
    case NetOp::kSet:
      return "SET";
    case NetOp::kDel:
      return "DEL";
    case NetOp::kAppend:
      return "APPEND";
    case NetOp::kHold:
      return "HOLD";
    case NetOp::kPing:
      return "PING";
    case NetOp::kQuit:
      return "QUIT";
    case NetOp::kStats:
      return "STATS";
    case NetOp::kHealth:
      return "HEALTH";
    case NetOp::kExplain:
      return "EXPLAIN";
    case NetOp::kTrace:
      return "TRACE";
    case NetOp::kCapacity:
      return "CAPACITY";
    case NetOp::kError:
      return "ERROR";
  }
  return "?";
}

NetCommand ParseRequestLine(std::string_view line) {
  if (line.empty()) {
    return MakeError("empty command");
  }
  uint64_t trace_id = 0;
  int64_t origin_ns = 0;
  if (line.front() == '*') {
    if (!ConsumeTracePrefix(&line, &trace_id, &origin_ns)) {
      return MakeError("malformed trace prefix");
    }
  }
  const size_t name_end = line.find(' ');
  const std::string_view name =
      name_end == std::string_view::npos ? line : line.substr(0, name_end);
  const std::string_view rest =
      name_end == std::string_view::npos ? std::string_view()
                                         : line.substr(name_end + 1);

  NetCommand cmd;
  cmd.trace_id = trace_id;
  cmd.origin_ns = origin_ns;
  if (EqualsIgnoreCase(name, "GET") || EqualsIgnoreCase(name, "DEL") ||
      EqualsIgnoreCase(name, "HOLD")) {
    const auto tokens = Tokenize(rest, 2);
    if (rest.empty() || tokens.size() != 1 || tokens[0].empty()) {
      return MakeError(std::string(name) + " expects exactly one key");
    }
    cmd.op = EqualsIgnoreCase(name, "GET")
                 ? NetOp::kGet
                 : (EqualsIgnoreCase(name, "DEL") ? NetOp::kDel
                                                  : NetOp::kHold);
    cmd.key.assign(tokens[0]);
    return cmd;
  }
  if (EqualsIgnoreCase(name, "SET") || EqualsIgnoreCase(name, "APPEND")) {
    const auto tokens = Tokenize(rest, 2);
    if (tokens.size() != 2 || tokens[0].empty() || tokens[1].empty()) {
      return MakeError(std::string(name) + " expects a key and a value");
    }
    cmd.op = EqualsIgnoreCase(name, "SET") ? NetOp::kSet : NetOp::kAppend;
    cmd.key.assign(tokens[0]);
    cmd.value.assign(tokens[1]);
    return cmd;
  }
  if (EqualsIgnoreCase(name, "PING")) {
    if (!rest.empty()) {
      return MakeError("PING takes no arguments");
    }
    cmd.op = NetOp::kPing;
    return cmd;
  }
  if (EqualsIgnoreCase(name, "QUIT")) {
    cmd.op = NetOp::kQuit;
    return cmd;
  }
  if (EqualsIgnoreCase(name, "STATS")) {
    // Normalize to StatsRequest's "prefix tail" wire format ("-" stands in
    // for the empty prefix, 32 is the default tail).
    const auto tokens = Tokenize(rest, 3);
    if (rest.empty()) {
      cmd.text = "- 32";
    } else if (tokens.size() == 1) {
      cmd.text = std::string(tokens[0]) + " 32";
    } else if (tokens.size() == 2 && IsUnsignedNumber(tokens[1])) {
      cmd.text = std::string(tokens[0]) + " " + std::string(tokens[1]);
    } else {
      return MakeError("STATS expects [prefix [tail_points]]");
    }
    cmd.op = NetOp::kStats;
    return cmd;
  }
  if (EqualsIgnoreCase(name, "HEALTH")) {
    const auto tokens = Tokenize(rest, 2);
    if (rest.empty()) {
      cmd.text = "harness.op.count";
    } else if (tokens.size() == 1) {
      cmd.text.assign(tokens[0]);
    } else {
      return MakeError("HEALTH expects at most one series name");
    }
    cmd.op = NetOp::kHealth;
    return cmd;
  }
  if (EqualsIgnoreCase(name, "EXPLAIN")) {
    // MitigationRequest's "kind guid address exit_code": validate the arity
    // here so garbage never reaches the reactor parser.
    const auto tokens = Tokenize(rest, 5);
    if (tokens.size() != 4) {
      return MakeError("EXPLAIN expects: kind guid address exit_code");
    }
    cmd.op = NetOp::kExplain;
    cmd.text.assign(rest);
    return cmd;
  }
  if (EqualsIgnoreCase(name, "CAPACITY")) {
    // Normalize to CapacityRequest's "prefix" wire format ("-" stands in
    // for the default `resource.` series prefix).
    const auto tokens = Tokenize(rest, 2);
    if (rest.empty()) {
      cmd.text = "-";
    } else if (tokens.size() == 1) {
      cmd.text.assign(tokens[0]);
    } else {
      return MakeError("CAPACITY expects [series_prefix]");
    }
    cmd.op = NetOp::kCapacity;
    return cmd;
  }
  if (EqualsIgnoreCase(name, "TRACE")) {
    const auto tokens = Tokenize(rest, 2);
    if (rest.empty() || tokens.size() != 1 || !IsUnsignedNumber(tokens[0])) {
      return MakeError("TRACE expects exactly one numeric trace id");
    }
    cmd.op = NetOp::kTrace;
    cmd.text.assign(tokens[0]);
    return cmd;
  }
  return MakeError("unknown command '" + std::string(name) + "'");
}

size_t RequestParser::Feed(const char* data, size_t size,
                           std::vector<NetCommand>* out) {
  size_t parsed = 0;
  for (size_t i = 0; i < size; i++) {
    const char c = data[i];
    if (c != '\n') {
      if (discarding_) {
        continue;
      }
      buffer_.push_back(c);
      if (buffer_.size() > max_line_bytes_) {
        // One error for the oversized line, then swallow the remainder.
        out->push_back(MakeError("line exceeds " +
                                 std::to_string(max_line_bytes_) + " bytes"));
        parsed++;
        buffer_.clear();
        discarding_ = true;
      }
      continue;
    }
    if (discarding_) {
      discarding_ = false;  // resynchronized at the newline
      continue;
    }
    if (!buffer_.empty() && buffer_.back() == '\r') {
      buffer_.pop_back();
    }
    out->push_back(ParseRequestLine(buffer_));
    parsed++;
    buffer_.clear();
  }
  return parsed;
}

// --- Reply encoding ----------------------------------------------------------

void EncodeSimple(std::string_view msg, std::string* out) {
  out->push_back('+');
  out->append(msg);
  out->append("\r\n");
}

void EncodeError(std::string_view msg, std::string* out) {
  out->append("-ERR ");
  out->append(msg);
  out->append("\r\n");
}

void EncodeFault(std::string_view msg, std::string* out) {
  out->append("-FAULT ");
  out->append(msg);
  out->append("\r\n");
}

void EncodeInteger(int64_t value, std::string* out) {
  out->push_back(':');
  out->append(std::to_string(value));
  out->append("\r\n");
}

void EncodeBulk(std::string_view payload, std::string* out) {
  out->push_back('$');
  out->append(std::to_string(payload.size()));
  out->append("\r\n");
  out->append(payload);
  out->append("\r\n");
}

void EncodeNil(std::string* out) { out->append("$-1\r\n"); }

// --- Reply framing -----------------------------------------------------------

size_t ReplyParser::Feed(const char* data, size_t size,
                         std::vector<NetReply>* out) {
  size_t parsed = 0;
  buffer_.append(data, size);
  size_t pos = 0;
  while (true) {
    if (bulk_pending_ >= 0) {
      // Need payload + trailing CRLF.
      const size_t need = static_cast<size_t>(bulk_pending_) + 2;
      if (buffer_.size() - pos < need) {
        break;
      }
      NetReply reply;
      reply.kind = NetReply::Kind::kBulk;
      reply.text = buffer_.substr(pos, static_cast<size_t>(bulk_pending_));
      out->push_back(std::move(reply));
      parsed++;
      pos += need;
      bulk_pending_ = -1;
      continue;
    }
    const size_t nl = buffer_.find('\n', pos);
    if (nl == std::string::npos) {
      break;
    }
    std::string_view line(buffer_.data() + pos, nl - pos);
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    pos = nl + 1;
    NetReply reply;
    if (line.empty()) {
      reply.kind = NetReply::Kind::kError;
      reply.text = "empty reply line";
      out->push_back(std::move(reply));
      parsed++;
      continue;
    }
    const char tag = line.front();
    const std::string_view body = line.substr(1);
    switch (tag) {
      case '+':
        reply.kind = NetReply::Kind::kSimple;
        reply.text.assign(body);
        break;
      case '-':
        reply.kind = body.substr(0, 6) == "FAULT " ? NetReply::Kind::kFault
                                                   : NetReply::Kind::kError;
        reply.text.assign(body);
        break;
      case ':': {
        int64_t value = 0;
        const auto [ptr, ec] =
            std::from_chars(body.data(), body.data() + body.size(), value);
        if (ec != std::errc() || ptr != body.data() + body.size()) {
          reply.kind = NetReply::Kind::kError;
          reply.text = "malformed integer reply";
        } else {
          reply.kind = NetReply::Kind::kInteger;
          reply.integer = value;
        }
        break;
      }
      case '$': {
        int64_t len = 0;
        const auto [ptr, ec] =
            std::from_chars(body.data(), body.data() + body.size(), len);
        if (ec != std::errc() || ptr != body.data() + body.size() ||
            len < -1) {
          reply.kind = NetReply::Kind::kError;
          reply.text = "malformed bulk header";
          break;
        }
        if (len == -1) {
          reply.kind = NetReply::Kind::kNil;
          break;
        }
        bulk_pending_ = len;
        // The reply completes once the payload arrives.
        buffer_.erase(0, pos);
        pos = 0;
        continue;
      }
      default:
        reply.kind = NetReply::Kind::kError;
        reply.text = "unknown reply tag '" + std::string(1, tag) + "'";
        break;
    }
    out->push_back(std::move(reply));
    parsed++;
  }
  buffer_.erase(0, pos);
  return parsed;
}

}  // namespace net
}  // namespace arthas
