// Readiness-notification abstraction for the network plane.
//
// The server and the open-loop load generator both run readiness loops over
// thousands of nonblocking sockets. On Linux the loop is epoll (level-
// triggered — with per-connection input buffering there is nothing to gain
// from edge-triggered's extra bookkeeping, and level-triggered cannot lose
// a wakeup); everywhere else, and on demand for testing the fallback, it is
// plain poll(2) over a dense pollfd vector. Both backends speak the same
// three-call interface, so the event loops are backend-agnostic.

#ifndef ARTHAS_NET_POLLER_H_
#define ARTHAS_NET_POLLER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"

namespace arthas {
namespace net {

enum class PollerBackend {
  kAuto,   // epoll on Linux, poll elsewhere
  kEpoll,  // fails to construct off Linux
  kPoll,
};

const char* PollerBackendName(PollerBackend backend);
Result<PollerBackend> ParsePollerBackend(const std::string& name);

struct PollerEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  // Peer hung up or the socket errored; the owner should tear it down.
  bool closed = false;
};

class Poller {
 public:
  virtual ~Poller() = default;

  // Registers `fd` for readability (always) and, when `want_write`, for
  // writability. One registration per fd.
  virtual Status Add(int fd, bool want_write) = 0;
  // Rewrites the interest set of a registered fd.
  virtual Status Update(int fd, bool want_write) = 0;
  // Deregisters; unknown fds are ignored (close() may race a queued event).
  virtual void Remove(int fd) = 0;

  // Blocks up to timeout_ms (-1 = forever, 0 = nonblocking) and fills
  // `out` (cleared first) with the ready fds. Returns the event count, or
  // a negative errno-style value on failure.
  virtual int Wait(std::vector<PollerEvent>* out, int timeout_ms) = 0;

  virtual PollerBackend backend() const = 0;

  // Constructs the requested backend (kAuto picks the platform's best).
  static std::unique_ptr<Poller> Make(PollerBackend backend);
};

// Raises RLIMIT_NOFILE's soft limit toward `want` descriptors (capped at
// the hard limit). The thousands-of-connections sweeps need more than the
// usual 1024-fd default; failure is reported but non-fatal (the caller can
// still run a smaller sweep).
Status RaiseFdLimit(uint64_t want);

}  // namespace net
}  // namespace arthas

#endif  // ARTHAS_NET_POLLER_H_
