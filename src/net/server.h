// Epoll front end: the network plane's server (ROADMAP item 1).
//
// A readiness-loop TCP server in the memcached/redis mold: one nonblocking
// listener plus N event-loop threads, each owning a Poller (epoll on Linux,
// poll fallback) and a disjoint set of connections, so a loop never touches
// another loop's sockets and needs no per-connection locks. Accepted
// sockets are handed to loops round-robin through a small mailbox + wakeup
// pipe. All request handling is inline in the loop thread:
//
//   read() until EAGAIN -> RequestParser -> NetDispatcher::ExecuteBatch
//     (whole pipelined run, chunked at max_batch_commands) -> write(),
//     buffering what the socket won't take and poll-waiting for writable.
//
// Pipelining is where the throughput comes from: everything one read()
// returns is executed under a single request-lock acquisition and (with
// batch_persists) a single persist drain, so the per-request syscall and
// durability costs amortize across the pipeline depth. One slow request
// delays only its own connection's replies; other loops keep running until
// they hit the served system's request lock — which is exactly the
// contention the open-loop benchmark is built to expose.
//
// The server never owns the PM system: it serves whatever the dispatcher
// wraps, and a hard fault in the system surfaces as -FAULT replies (plus
// the dispatcher's recovery hook), never as a server crash.

#ifndef ARTHAS_NET_SERVER_H_
#define ARTHAS_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/dispatcher.h"
#include "net/poller.h"
#include "net/protocol.h"
#include "obs/timeseries.h"

namespace arthas {
namespace net {

struct NetServerOptions {
  // Loopback only: this is an experiment harness, not an exposed service.
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read the bound port after Start()
  int loop_threads = 2;
  PollerBackend backend = PollerBackend::kAuto;
  // A pipelined run longer than this executes as several batches, bounding
  // request-lock hold time (and crash blast radius) per acquisition.
  size_t max_batch_commands = 256;
  size_t max_line_bytes = 8192;
};

class NetServer {
 public:
  // The dispatcher (and everything behind it) must outlive the server.
  NetServer(NetDispatcher& dispatcher, NetServerOptions options = {});
  ~NetServer();  // Stop()s if still running

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds, listens, and starts the loop threads. Fails without side effects
  // (no threads) on bind/poller errors.
  Status Start();
  // Idempotent; joins every loop thread and closes every socket.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // Bound port (useful with port = 0). Valid after a successful Start().
  uint16_t port() const { return port_; }

  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  uint64_t connections_open() const {
    return connections_open_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    int fd = -1;
    RequestParser parser;
    std::string outbuf;       // bytes the socket would not take yet
    size_t outbuf_sent = 0;   // prefix of outbuf already written
    // Pending bytes last folded into the loop's outbuf_bytes gauge (the
    // delta scheme keeps the gauge exact across partial writes/teardown).
    size_t outbuf_accounted = 0;
    bool want_write = false;  // poller registered for writability
    bool closing = false;     // QUIT seen: close once outbuf drains

    explicit Connection(size_t max_line_bytes) : parser(max_line_bytes) {}
  };

  // One event-loop thread: poller + the connections it owns.
  struct Loop {
    std::unique_ptr<Poller> poller;
    std::thread thread;
    int wakeup_read_fd = -1;
    int wakeup_write_fd = -1;
    std::mutex mailbox_mutex;
    std::vector<int> mailbox;  // accepted fds awaiting adoption
    std::unordered_map<int, std::unique_ptr<Connection>> connections;
    // Backpressure gauges scraped by the telemetry-sampler probes: bytes
    // replies are stuck in outbufs, and how many readiness events the last
    // poll wait returned (a loop's instantaneous queue depth).
    std::atomic<int64_t> outbuf_bytes{0};
    std::atomic<int64_t> queue_depth{0};
  };

  void RunLoop(Loop& loop, bool owns_listener);
  void AcceptReady(Loop& listener_loop);
  void AdoptMailbox(Loop& loop);
  // Returns false when the connection was torn down.
  bool HandleReadable(Loop& loop, Connection& conn);
  bool FlushOutbuf(Loop& loop, Connection& conn);
  void CloseConnection(Loop& loop, int fd);
  void Wake(Loop& loop);
  // Folds conn's pending-reply byte count into loop.outbuf_bytes.
  static void AccountOutbuf(Loop& loop, Connection& conn);

  NetDispatcher& dispatcher_;
  NetServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<size_t> next_loop_{0};  // round-robin accept target
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_open_{0};
  // Sampler probes summing the per-loop backpressure gauges (registered in
  // Start(), unregistered in Stop() before loops_ is torn down).
  obs::ProbeId outbuf_probe_ = obs::kNoProbe;
  obs::ProbeId queue_probe_ = obs::kNoProbe;
};

}  // namespace net
}  // namespace arthas

#endif  // ARTHAS_NET_SERVER_H_
