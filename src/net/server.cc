#include "net/server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/obs.h"
#include "obs/reqtrace.h"
#include "obs/resource/resource_accountant.h"

namespace arthas {
namespace net {

namespace {

Status SetNonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Internal(std::string("fcntl O_NONBLOCK: ") + std::strerror(errno));
  }
  return OkStatus();
}

constexpr size_t kReadChunk = 64 * 1024;
// Compact a partially-written output buffer once the dead prefix crosses
// this, so a slow reader cannot make the buffer grow without bound.
constexpr size_t kOutbufCompactBytes = 256 * 1024;

}  // namespace

NetServer::NetServer(NetDispatcher& dispatcher, NetServerOptions options)
    : dispatcher_(dispatcher), options_(std::move(options)) {
  if (options_.loop_threads < 1) {
    options_.loop_threads = 1;
  }
  if (options_.max_batch_commands < 1) {
    options_.max_batch_commands = 1;
  }
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (running()) {
    return FailedPrecondition("server already running");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InvalidArgument("bad listen address '" + options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status =
        Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 1024) != 0) {
    const Status status =
        Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  ARTHAS_RETURN_IF_ERROR(SetNonblocking(listen_fd_));

  // Build every loop before starting any thread, so a poller/pipe failure
  // rolls back cleanly.
  for (int i = 0; i < options_.loop_threads; i++) {
    auto loop = std::make_unique<Loop>();
    loop->poller = Poller::Make(options_.backend);
    if (loop->poller == nullptr) {
      Stop();
      return Internal("poller backend unavailable");
    }
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      Stop();
      return Internal(std::string("pipe: ") + std::strerror(errno));
    }
    loop->wakeup_read_fd = pipe_fds[0];
    loop->wakeup_write_fd = pipe_fds[1];
    (void)SetNonblocking(loop->wakeup_read_fd);
    (void)SetNonblocking(loop->wakeup_write_fd);
    ARTHAS_RETURN_IF_ERROR(loop->poller->Add(loop->wakeup_read_fd, false));
    loops_.push_back(std::move(loop));
  }
  // Loop 0 owns the listener.
  ARTHAS_RETURN_IF_ERROR(loops_[0]->poller->Add(listen_fd_, false));

  // Backpressure gauges for the sampler's timeline (probe-only: a probe's
  // series must not collide with a registry gauge of the same name, since
  // the sampler scrapes registry gauges too).
  outbuf_probe_ = ARTHAS_TELEMETRY_PROBE(
      "net.conn.outbuf_bytes", obs::ProbeKind::kGauge, [this]() {
        int64_t total = 0;
        for (const auto& loop : loops_) {
          total += loop->outbuf_bytes.load(std::memory_order_relaxed);
        }
        return static_cast<double>(total);
      });
  queue_probe_ = ARTHAS_TELEMETRY_PROBE(
      "net.loop.queue_depth", obs::ProbeKind::kGauge, [this]() {
        int64_t total = 0;
        for (const auto& loop : loops_) {
          total += loop->queue_depth.load(std::memory_order_relaxed);
        }
        return static_cast<double>(total);
      });

  running_.store(true, std::memory_order_release);
  for (size_t i = 0; i < loops_.size(); i++) {
    Loop* loop = loops_[i].get();
    const bool owns_listener = i == 0;
    loop->thread =
        std::thread([this, loop, owns_listener] { RunLoop(*loop, owns_listener); });
  }
  return OkStatus();
}

void NetServer::Stop() {
  running_.store(false, std::memory_order_release);
  // The probe lambdas walk loops_; detach them before any teardown.
  if (outbuf_probe_ != obs::kNoProbe) {
    ARTHAS_TELEMETRY_UNPROBE(outbuf_probe_);
    outbuf_probe_ = obs::kNoProbe;
  }
  if (queue_probe_ != obs::kNoProbe) {
    ARTHAS_TELEMETRY_UNPROBE(queue_probe_);
    queue_probe_ = obs::kNoProbe;
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) {
      Wake(*loop);
      loop->thread.join();
    }
  }
  for (auto& loop : loops_) {
    for (auto& [fd, conn] : loop->connections) {
      // Connections torn down wholesale bypass CloseConnection: unwind
      // their accounted outbuf bytes here so the cell returns to baseline.
      ARTHAS_RESOURCE_ADD("net.outbuf.bytes", "bytes",
                          -static_cast<int64_t>(conn->outbuf_accounted));
      ::close(fd);
    }
    loop->connections.clear();
    for (const int fd : loop->mailbox) {
      ::close(fd);
    }
    loop->mailbox.clear();
    if (loop->wakeup_read_fd >= 0) {
      ::close(loop->wakeup_read_fd);
      ::close(loop->wakeup_write_fd);
    }
  }
  loops_.clear();
  connections_open_.store(0, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void NetServer::Wake(Loop& loop) {
  const char byte = 1;
  // EAGAIN means a wakeup is already pending — good enough.
  (void)!::write(loop.wakeup_write_fd, &byte, 1);
}

void NetServer::RunLoop(Loop& loop, bool owns_listener) {
  std::vector<PollerEvent> events;
  while (running_.load(std::memory_order_acquire)) {
    // The timeout is a liveness backstop only; all real work arrives as a
    // readiness event or a wakeup byte.
    (void)loop.poller->Wait(&events, 200);
    loop.queue_depth.store(static_cast<int64_t>(events.size()),
                           std::memory_order_relaxed);
    for (const PollerEvent& event : events) {
      if (event.fd == loop.wakeup_read_fd) {
        char drain[256];
        while (::read(loop.wakeup_read_fd, drain, sizeof(drain)) > 0) {
        }
        AdoptMailbox(loop);
        continue;
      }
      if (owns_listener && event.fd == listen_fd_) {
        AcceptReady(loop);
        continue;
      }
      auto it = loop.connections.find(event.fd);
      if (it == loop.connections.end()) {
        continue;  // already torn down earlier in this event sweep
      }
      Connection& conn = *it->second;
      if (event.readable) {
        if (!HandleReadable(loop, conn)) {
          continue;
        }
      }
      if (event.writable) {
        if (!FlushOutbuf(loop, conn)) {
          continue;
        }
      }
      if (event.closed && !event.readable) {
        // Hangup with nothing left to read: tear down. (When readable is
        // also set, HandleReadable consumed the final bytes and saw EOF.)
        CloseConnection(loop, event.fd);
      }
    }
  }
}

void NetServer::AcceptReady(Loop& listener_loop) {
  (void)listener_loop;
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // EMFILE/ENFILE: out of descriptors; the backlog keeps the rest and
      // we retry on the next readiness event.
      break;
    }
    if (!SetNonblocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    Loop& target =
        *loops_[next_loop_.fetch_add(1, std::memory_order_relaxed) %
                loops_.size()];
    {
      std::lock_guard<std::mutex> lock(target.mailbox_mutex);
      target.mailbox.push_back(fd);
    }
    Wake(target);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    ARTHAS_COUNTER_ADD("net.conn.accepted", 1);
  }
}

void NetServer::AdoptMailbox(Loop& loop) {
  std::vector<int> adopted;
  {
    std::lock_guard<std::mutex> lock(loop.mailbox_mutex);
    adopted.swap(loop.mailbox);
  }
  for (const int fd : adopted) {
    if (!loop.poller->Add(fd, false).ok()) {
      ::close(fd);
      continue;
    }
    loop.connections.emplace(
        fd, std::make_unique<Connection>(options_.max_line_bytes));
    loop.connections[fd]->fd = fd;
    connections_open_.fetch_add(1, std::memory_order_relaxed);
  }
  ARTHAS_GAUGE_SET("net.conn.open",
                   static_cast<int64_t>(
                       connections_open_.load(std::memory_order_relaxed)));
}

void NetServer::AccountOutbuf(Loop& loop, Connection& conn) {
  const size_t pending = conn.outbuf.size() - conn.outbuf_sent;
  if (pending != conn.outbuf_accounted) {
    const int64_t delta = static_cast<int64_t>(pending) -
                          static_cast<int64_t>(conn.outbuf_accounted);
    loop.outbuf_bytes.fetch_add(delta, std::memory_order_relaxed);
    // Capacity plane: process-wide pending-reply bytes across all loops
    // (delta-maintained; CloseConnection and Stop unwind).
    ARTHAS_RESOURCE_ADD("net.outbuf.bytes", "bytes", delta);
    conn.outbuf_accounted = pending;
  }
}

bool NetServer::HandleReadable(Loop& loop, Connection& conn) {
  const int64_t received_ns = ARTHAS_REQTRACE_NOW();
  std::vector<NetCommand> commands;
  char buf[kReadChunk];
  bool eof = false;
  while (true) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.parser.Feed(buf, static_cast<size_t>(n), &commands);
      continue;
    }
    if (n == 0) {
      eof = true;  // peer closed; serve what completed, then tear down
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    CloseConnection(loop, conn.fd);
    return false;
  }

  // Nothing past a QUIT executes (the client said goodbye); the reply to
  // QUIT itself still goes out before the close.
  for (size_t i = 0; i < commands.size(); i++) {
    if (commands[i].op == NetOp::kQuit) {
      commands.resize(i + 1);
      conn.closing = true;
      break;
    }
  }

  // Execute the whole pipelined run, chunked so one read() can't hold the
  // request lock arbitrarily long.
  for (size_t i = 0; i < commands.size(); i += options_.max_batch_commands) {
    const size_t end =
        std::min(commands.size(), i + options_.max_batch_commands);
    const std::vector<NetCommand> chunk(commands.begin() + i,
                                        commands.begin() + end);
    dispatcher_.ExecuteBatch(chunk, &conn.outbuf, received_ns);
  }

  if (eof) {
    ARTHAS_REQTRACE_REPLY_FLUSHED();
    CloseConnection(loop, conn.fd);
    return false;
  }
  const bool alive = FlushOutbuf(loop, conn);
  // Replies (attempted) on the wire: finalize this read's request traces.
  ARTHAS_REQTRACE_REPLY_FLUSHED();
  return alive;
}

bool NetServer::FlushOutbuf(Loop& loop, Connection& conn) {
  while (conn.outbuf_sent < conn.outbuf.size()) {
    const ssize_t n = ::write(conn.fd, conn.outbuf.data() + conn.outbuf_sent,
                              conn.outbuf.size() - conn.outbuf_sent);
    if (n > 0) {
      conn.outbuf_sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (conn.outbuf_sent >= kOutbufCompactBytes) {
        conn.outbuf.erase(0, conn.outbuf_sent);
        conn.outbuf_sent = 0;
      }
      if (!conn.want_write) {
        conn.want_write = true;
        (void)loop.poller->Update(conn.fd, true);
      }
      AccountOutbuf(loop, conn);
      return true;  // poll will tell us when the socket drains
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    CloseConnection(loop, conn.fd);
    return false;
  }
  conn.outbuf.clear();
  conn.outbuf_sent = 0;
  AccountOutbuf(loop, conn);
  if (conn.want_write) {
    conn.want_write = false;
    (void)loop.poller->Update(conn.fd, false);
  }
  if (conn.closing) {
    CloseConnection(loop, conn.fd);
    return false;
  }
  return true;
}

void NetServer::CloseConnection(Loop& loop, int fd) {
  auto it = loop.connections.find(fd);
  if (it == loop.connections.end()) {
    return;
  }
  loop.outbuf_bytes.fetch_sub(
      static_cast<int64_t>(it->second->outbuf_accounted),
      std::memory_order_relaxed);
  ARTHAS_RESOURCE_ADD(
      "net.outbuf.bytes", "bytes",
      -static_cast<int64_t>(it->second->outbuf_accounted));
  loop.poller->Remove(fd);
  ::close(fd);
  loop.connections.erase(it);
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace net
}  // namespace arthas
