#include "net/load_gen.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cerrno>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/clock.h"
#include "common/rng.h"
#include "net/protocol.h"
#include "obs/metrics.h"

namespace arthas {
namespace net {

namespace {

// The server's clock (CLOCK_MONOTONIC), not std::chrono::steady_clock:
// propagated trace origins must be comparable to server-side timestamps.
int64_t NowNs() { return NowNanos(); }

// Exponential inter-arrival gap for a Poisson process at `rate` req/s.
int64_t PoissonGapNs(Rng& rng, double rate) {
  double u = rng.NextDouble();
  if (u > 0.999999999) {
    u = 0.999999999;
  }
  const double seconds = -std::log(1.0 - u) / rate;
  return std::max<int64_t>(1, static_cast<int64_t>(seconds * 1e9));
}

int ConnectNonblocking(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// One in-flight request: its scheduled (Poisson) arrival time and, when
// contexts propagate, the trace id prefixed onto the wire.
struct PendingRequest {
  int64_t scheduled_ns = 0;
  uint64_t trace_id = 0;
};

struct ClientConn {
  int fd = -1;
  ReplyParser parser;
  // In-flight requests in send order. Replies come back strictly in order
  // per connection, so front() is the match.
  std::deque<PendingRequest> pending;
  std::string outbuf;
  size_t outbuf_sent = 0;
  bool want_write = false;
};

struct WorkerTally {
  uint64_t sent = 0;
  uint64_t received = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;
  uint64_t faults = 0;
  uint64_t dropped = 0;
  bool connect_failed = false;
};

class Worker {
 public:
  Worker(const LoadGenOptions& options, const RequestGenerator& generator,
         int index, int num_conns, int64_t t0_ns, std::atomic<uint64_t>& seq,
         obs::Histogram& latency)
      : options_(options),
        generator_(generator),
        num_conns_(num_conns),
        t0_ns_(t0_ns),
        seq_(seq),
        latency_(latency),
        rng_(options.seed * 7919 + static_cast<uint64_t>(index) + 1) {}

  WorkerTally Run() {
    poller_ = Poller::Make(options_.backend);
    if (poller_ == nullptr || !Connect()) {
      tally_.connect_failed = true;
      Teardown();
      return tally_;
    }

    const double rate =
        options_.target_qps / std::max(1, options_.threads);
    const int64_t send_deadline_ns =
        t0_ns_ + options_.duration_ms * 1'000'000;
    const int64_t drain_deadline_ns =
        send_deadline_ns + options_.drain_ms * 1'000'000;
    int64_t next_send_ns = t0_ns_ + PoissonGapNs(rng_, rate);

    std::vector<PollerEvent> events;
    std::vector<size_t> dirty;  // connections with unsent bytes
    while (true) {
      int64_t now = NowNs();

      // Schedule every arrival whose time has come. Arrivals never stall on
      // replies — that is the whole point of open loop.
      while (next_send_ns <= now && next_send_ns < send_deadline_ns) {
        const size_t c = round_robin_++ % conns_.size();
        ClientConn& conn = conns_[c];
        if (conn.fd >= 0) {
          const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
          // Ids are seq + 1: nonzero on the wire, and far below the
          // server-assigned id space (see RequestTracePlane::kServerIdBase).
          const uint64_t trace_id =
              options_.propagate_trace_ids ? seq + 1 : 0;
          if (trace_id != 0) {
            conn.outbuf.push_back('*');
            conn.outbuf.append(std::to_string(trace_id));
            conn.outbuf.push_back(':');
            conn.outbuf.append(std::to_string(next_send_ns));
            conn.outbuf.push_back(' ');
          }
          generator_(seq, &conn.outbuf);
          conn.pending.push_back(PendingRequest{next_send_ns, trace_id});
          tally_.sent++;
          dirty.push_back(c);
        }
        next_send_ns += PoissonGapNs(rng_, rate);
      }
      for (const size_t c : dirty) {
        FlushConn(conns_[c]);
      }
      dirty.clear();

      // Sleep in the poller until the next arrival is due (or a reply
      // lands), capped so the drain deadline is honored.
      const bool sending = next_send_ns < send_deadline_ns;
      const int64_t wake_ns = sending ? next_send_ns : drain_deadline_ns;
      const int timeout_ms = static_cast<int>(
          std::clamp<int64_t>((wake_ns - now) / 1'000'000, 0, 20));
      (void)poller_->Wait(&events, timeout_ms);
      now = NowNs();

      for (const PollerEvent& event : events) {
        ClientConn* conn = FindConn(event.fd);
        if (conn == nullptr) {
          continue;
        }
        if (event.readable && !ReadReplies(*conn, now)) {
          continue;  // torn down
        }
        if (event.writable) {
          FlushConn(*conn);
        }
        if (event.closed && !event.readable) {
          AbandonConn(*conn);
        }
      }

      if (now >= drain_deadline_ns) {
        break;
      }
      if (now >= send_deadline_ns && InFlight() == 0) {
        break;
      }
    }

    for (ClientConn& conn : conns_) {
      tally_.dropped += conn.pending.size();
    }
    Teardown();
    return tally_;
  }

 private:
  bool Connect() {
    conns_.resize(static_cast<size_t>(num_conns_));
    for (ClientConn& conn : conns_) {
      conn.fd = ConnectNonblocking(options_.host, options_.port);
      if (conn.fd < 0) {
        return false;
      }
      if (!poller_->Add(conn.fd, false).ok()) {
        return false;
      }
      index_[conn.fd] = &conn;
    }
    return !conns_.empty();
  }

  ClientConn* FindConn(int fd) {
    auto it = index_.find(fd);
    return it == index_.end() ? nullptr : it->second;
  }

  uint64_t InFlight() const {
    uint64_t n = 0;
    for (const ClientConn& conn : conns_) {
      n += conn.pending.size();
    }
    return n;
  }

  void FlushConn(ClientConn& conn) {
    if (conn.fd < 0) {
      return;
    }
    while (conn.outbuf_sent < conn.outbuf.size()) {
      const ssize_t n =
          ::write(conn.fd, conn.outbuf.data() + conn.outbuf_sent,
                  conn.outbuf.size() - conn.outbuf_sent);
      if (n > 0) {
        conn.outbuf_sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!conn.want_write) {
          conn.want_write = true;
          (void)poller_->Update(conn.fd, true);
        }
        return;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      AbandonConn(conn);
      return;
    }
    conn.outbuf.clear();
    conn.outbuf_sent = 0;
    if (conn.want_write) {
      conn.want_write = false;
      (void)poller_->Update(conn.fd, false);
    }
  }

  bool ReadReplies(ClientConn& conn, int64_t now) {
    char buf[64 * 1024];
    std::vector<NetReply> replies;
    while (true) {
      const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
      if (n > 0) {
        conn.parser.Feed(buf, static_cast<size_t>(n), &replies);
        continue;
      }
      if (n == 0) {
        Account(conn, replies, now);
        AbandonConn(conn);
        return false;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      Account(conn, replies, now);
      AbandonConn(conn);
      return false;
    }
    Account(conn, replies, now);
    return true;
  }

  void Account(ClientConn& conn, const std::vector<NetReply>& replies,
               int64_t now) {
    for (const NetReply& reply : replies) {
      if (conn.pending.empty()) {
        break;  // server babbling? nothing sane to match against
      }
      const PendingRequest pending = conn.pending.front();
      conn.pending.pop_front();
      tally_.received++;
      switch (reply.kind) {
        case NetReply::Kind::kError:
          tally_.errors++;
          break;
        case NetReply::Kind::kFault:
          tally_.faults++;
          break;
        default:
          tally_.ok++;
          break;
      }
      const uint64_t latency = static_cast<uint64_t>(
          std::max<int64_t>(0, now - pending.scheduled_ns));
      // The exemplar links a tail bucket back to the request's trace id,
      // so "what was the p999?" has a TRACE-able answer.
      latency_.RecordWithExemplar(latency, pending.trace_id);
    }
  }

  // Connection lost: its in-flight requests become drops at the end.
  void AbandonConn(ClientConn& conn) {
    if (conn.fd < 0) {
      return;
    }
    poller_->Remove(conn.fd);
    index_.erase(conn.fd);
    ::close(conn.fd);
    conn.fd = -1;
  }

  void Teardown() {
    for (ClientConn& conn : conns_) {
      if (conn.fd >= 0) {
        poller_->Remove(conn.fd);
        ::close(conn.fd);
        conn.fd = -1;
      }
    }
    index_.clear();
  }

  const LoadGenOptions& options_;
  const RequestGenerator& generator_;
  const int num_conns_;
  const int64_t t0_ns_;
  std::atomic<uint64_t>& seq_;
  obs::Histogram& latency_;
  Rng rng_;
  std::unique_ptr<Poller> poller_;
  std::vector<ClientConn> conns_;
  std::unordered_map<int, ClientConn*> index_;
  size_t round_robin_ = 0;
  WorkerTally tally_;
};

}  // namespace

LoadGenReport RunOpenLoop(const LoadGenOptions& options,
                          const RequestGenerator& generator) {
  LoadGenReport report;
  const int threads = std::max(1, options.threads);
  const int connections = std::max(threads, options.connections);
  if (options.target_qps <= 0 || options.duration_ms <= 0) {
    report.status = InvalidArgument("target_qps and duration_ms must be > 0");
    return report;
  }
  (void)RaiseFdLimit(static_cast<uint64_t>(connections) + 512);

  // Latency samples land in one shared histogram (Record is atomic).
  obs::Histogram latency;
  std::atomic<uint64_t> seq{0};
  const int64_t t0_ns = NowNs();

  std::vector<WorkerTally> tallies(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; i++) {
    // Split connections as evenly as integer division allows.
    const int conns =
        connections / threads + (i < connections % threads ? 1 : 0);
    workers.emplace_back([&, i, conns] {
      Worker worker(options, generator, i, conns, t0_ns, seq, latency);
      tallies[static_cast<size_t>(i)] = worker.Run();
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  report.elapsed_ns = NowNs() - t0_ns;

  bool connect_failed = false;
  for (const WorkerTally& tally : tallies) {
    report.sent += tally.sent;
    report.received += tally.received;
    report.ok += tally.ok;
    report.errors += tally.errors;
    report.faults += tally.faults;
    report.dropped += tally.dropped;
    connect_failed |= tally.connect_failed;
  }
  if (connect_failed) {
    report.status = Internal("one or more load threads failed to connect");
  }

  const double window_s =
      static_cast<double>(options.duration_ms) / 1000.0;
  report.offered_qps = static_cast<double>(report.sent) / window_s;
  report.achieved_qps = static_cast<double>(report.ok) / window_s;

  const obs::HistogramSnapshot snapshot = latency.Snapshot();
  report.mean_us = snapshot.mean / 1000.0;
  report.p50_us = snapshot.p50 / 1000.0;
  report.p95_us = snapshot.p95 / 1000.0;
  report.p99_us = snapshot.p99 / 1000.0;
  report.p999_us = snapshot.p999 / 1000.0;
  report.max_us = static_cast<double>(snapshot.max) / 1000.0;
  if (options.propagate_trace_ids) {
    // p999 and up: at full-sweep sample counts (~250k per point) the p99
    // tail names ~10x more requests than the plane's slowest-request
    // reservoir retains, so lower buckets would never resolve.
    report.tail_exemplars = latency.TailExemplars(0.999);
  }
  return report;
}

}  // namespace net
}  // namespace arthas
