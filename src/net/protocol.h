// Wire protocol of the network plane (ROADMAP item 1).
//
// A small memcached-text / RESP hybrid chosen so that the five mini KV
// systems can serve real sockets without inventing a serialization layer:
// requests are single ASCII lines (like memcached's text protocol), replies
// are RESP-typed (simple string / error / integer / bulk), which gives the
// client an unambiguous frame for pipelined responses.
//
// Requests (one per line, terminated by '\n', an optional preceding '\r' is
// stripped; tokens separated by single spaces):
//
//   GET <key>                    -> $<len>\r\n<value>\r\n  |  $-1\r\n (miss)
//   SET <key> <value>            -> +OK
//   DEL <key>                    -> :1 (deleted) | :0 (not found)
//   APPEND <key> <value>         -> +OK
//   HOLD <key>                   -> +OK            (item refcount++)
//   PING                         -> +PONG
//   QUIT                         -> +BYE, then the server closes
//   STATS [prefix [tail]]        -> $<len>\r\n<StatsResponse::Serialize>\r\n
//   HEALTH [series]              -> $<len>\r\n<HealthResponse::Serialize>\r\n
//   EXPLAIN <kind> <guid> <addr> <exit>
//                                -> $<len>\r\n<ExplainResponse::Serialize>\r\n
//   TRACE <id>                   -> $<len>\r\n<slow-request autopsy>\r\n
//   CAPACITY [prefix]            -> $<len>\r\n<CapacityResponse::Serialize>\r\n
//
// Trace-context prefix: any request line may start with `*<id> ` or
// `*<id>:<origin_ns> ` (id: nonzero decimal; origin_ns: the client's
// scheduled-arrival time on the shared monotonic clock). The prefix binds
// the line's command to that trace id in the request trace plane, so a
// later `TRACE <id>` can answer where the request's time went; origin_ns
// additionally charges client-side scheduling wait to the trace. The
// prefix is framing, not a command — it survives byte-boundary splits like
// everything else because it travels inside the line.
//
// Values travel inline as one token (the YCSB workloads generate printable
// single-token values), so a request never spans lines and the parser can
// resynchronize on any '\n'. Error replies:
//
//   -ERR <message>    protocol or argument error; the connection stays up
//                     and NO fault is latched on the served system (garbage
//                     from one client must never look like a server bug),
//   -FAULT <message>  the served system latched a hard fault handling the
//                     request (the "process" died; the reactor takes over).
//
// RequestParser is incremental: feed it whatever read() returned — half a
// line, one byte, or forty pipelined commands — and it emits every command
// that completed. A line longer than max_line_bytes is rejected with one
// kError command and swallowed up to its newline (memcached's
// CLIENT_ERROR discipline), keeping one abusive client from wedging the
// connection. ReplyParser is the client-side mirror used by the open-loop
// load generator and the tests.

#ifndef ARTHAS_NET_PROTOCOL_H_
#define ARTHAS_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace arthas {
namespace net {

enum class NetOp {
  kGet,
  kSet,
  kDel,
  kAppend,
  kHold,
  kPing,
  kQuit,
  kStats,     // reactor passthrough: StatsRequest wire text in `text`
  kHealth,    // reactor passthrough: HealthRequest wire text in `text`
  kExplain,   // reactor passthrough: MitigationRequest wire text in `text`
  kTrace,     // slow-request autopsy: requested trace id (decimal) in `text`
  kCapacity,  // reactor passthrough: CapacityRequest wire text in `text`
  kError,     // malformed input; `text` holds the message to send back
};

const char* NetOpName(NetOp op);

struct NetCommand {
  NetOp op = NetOp::kError;
  std::string key;
  std::string value;
  // kStats/kHealth/kExplain: the normalized argument text handed to the
  // existing ReactorServer Parse() formats. kTrace: the requested id.
  // kError: the error message.
  std::string text;
  // Trace context from the `*<id>[:<origin_ns>]` prefix; 0 = none (the
  // dispatcher assigns a server-side id at parse time).
  uint64_t trace_id = 0;
  int64_t origin_ns = 0;
};

// Parses one complete request line (terminator already stripped).
NetCommand ParseRequestLine(std::string_view line);

// Incremental request framing. Feed() buffers partial lines across calls,
// so a command split at any byte boundary parses identically to one
// delivered whole.
class RequestParser {
 public:
  explicit RequestParser(size_t max_line_bytes = 8192)
      : max_line_bytes_(max_line_bytes) {}

  // Consumes `size` bytes, appending every completed command to `out`.
  // Returns the number of commands appended.
  size_t Feed(const char* data, size_t size, std::vector<NetCommand>* out);

  size_t buffered_bytes() const { return buffer_.size(); }
  size_t max_line_bytes() const { return max_line_bytes_; }

 private:
  size_t max_line_bytes_;
  std::string buffer_;
  bool discarding_ = false;  // oversized line: swallow until the newline
};

// --- Reply encoding (server side) -------------------------------------------

void EncodeSimple(std::string_view msg, std::string* out);       // +msg
void EncodeError(std::string_view msg, std::string* out);        // -ERR msg
void EncodeFault(std::string_view msg, std::string* out);        // -FAULT msg
void EncodeInteger(int64_t value, std::string* out);             // :n
void EncodeBulk(std::string_view payload, std::string* out);     // $len...
void EncodeNil(std::string* out);                                // $-1

// --- Reply framing (client side) ---------------------------------------------

struct NetReply {
  enum class Kind { kSimple, kError, kFault, kInteger, kBulk, kNil };
  Kind kind = Kind::kError;
  std::string text;     // simple/error message or bulk payload
  int64_t integer = 0;

  bool ok() const { return kind != Kind::kError && kind != Kind::kFault; }
};

class ReplyParser {
 public:
  // Consumes `size` bytes, appending every completed reply to `out`.
  // Returns the number of replies appended. Malformed framing surfaces as
  // kError replies (the stream then resynchronizes at the next line).
  size_t Feed(const char* data, size_t size, std::vector<NetReply>* out);

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
  // >= 0 while the payload of a bulk reply of that many bytes is pending.
  int64_t bulk_pending_ = -1;
};

}  // namespace net
}  // namespace arthas

#endif  // ARTHAS_NET_PROTOCOL_H_
