#include "checkpoint/checkpoint_log.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_map>

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "obs/resource/resource_accountant.h"

namespace arthas {

namespace {
// Transaction attribution is per-thread: OnTxBegin, the persists inside the
// transaction, and OnTxCommit all run on the thread executing it, so a
// thread-local tag (scoped to the log instance) attributes them correctly
// even while other threads run their own transactions. A log-global field
// would cross-tag concurrent transactions.
struct OpenTxTag {
  const void* log = nullptr;
  uint64_t tx_id = 0;
};
thread_local OpenTxTag tls_open_tx;

// Never reused, so a stale thread-local buffer entry from a destroyed log
// can never alias a new one.
std::atomic<uint64_t> next_log_id{1};

// Bucket hash for the per-shard flat index. The shard choice already
// consumed the cache-line bits (ShardOf), so mix the raw address and fold
// the high bits down — the bucket mask keeps only low bits.
uint64_t HashAddress(PmOffset address) {
  const uint64_t h = address * 0x9E3779B97F4A7C15ULL;
  return h ^ (h >> 32);
}
}  // namespace

// --- PayloadArena ------------------------------------------------------------
//
// Bodies live here (not inline in the header) so the capacity-plane
// instrumentation follows the same per-TU ARTHAS_OBS_DISABLED discipline
// as the rest of this file. Cells are delta-maintained: every path that
// acquires bytes adds, every path that releases them (including Clear and
// the destructor) subtracts, so a Store/Release round-trip provably
// returns the accountant to its starting values.

PayloadArena::~PayloadArena() { Clear(); }

PayloadRef PayloadArena::Store(const uint8_t* src, size_t size) {
  if (size == 0) {
    return PayloadRef();
  }
  uint8_t* span = Alloc(size);
  std::memcpy(span, src, size);
  const size_t footprint = SpanBytes(size);
  live_bytes_ += footprint;
  ARTHAS_RESOURCE_ADD("checkpoint.arena.live.bytes", "bytes", footprint);
  return PayloadRef(span, size);
}

void PayloadArena::Release(PayloadRef ref) {
  if (ref.size() == 0 || ref.size() > kMaxSmall) {
    return;  // large spans live until Clear
  }
  const size_t footprint = SpanBytes(ref.size());
  free_[ClassOf(ref.size())].push_back(const_cast<uint8_t*>(ref.data()));
  live_bytes_ -= footprint;
  freelist_bytes_ += footprint;
  ARTHAS_RESOURCE_ADD("checkpoint.arena.live.bytes", "bytes",
                      -static_cast<int64_t>(footprint));
  ARTHAS_RESOURCE_ADD("checkpoint.arena.freelist.bytes", "bytes", footprint);
}

void PayloadArena::Clear() {
  chunks_.clear();
  cursor_ = nullptr;
  remaining_ = 0;
  for (auto& list : free_) {
    list.clear();
  }
  if (chunk_counter_ != nullptr) {
    chunk_counter_->fetch_sub(allocated_bytes_, std::memory_order_relaxed);
  }
  ARTHAS_RESOURCE_ADD("checkpoint.arena.bytes", "bytes",
                      -static_cast<int64_t>(allocated_bytes_));
  ARTHAS_RESOURCE_ADD("checkpoint.arena.live.bytes", "bytes",
                      -static_cast<int64_t>(live_bytes_));
  ARTHAS_RESOURCE_ADD("checkpoint.arena.freelist.bytes", "bytes",
                      -static_cast<int64_t>(freelist_bytes_));
  allocated_bytes_ = 0;
  live_bytes_ = 0;
  freelist_bytes_ = 0;
}

void PayloadArena::AddChunkBytes(size_t bytes) {
  allocated_bytes_ += bytes;
  if (chunk_counter_ != nullptr) {
    chunk_counter_->fetch_add(bytes, std::memory_order_relaxed);
  }
  ARTHAS_RESOURCE_ADD("checkpoint.arena.bytes", "bytes", bytes);
}

uint8_t* PayloadArena::Alloc(size_t size) {
  if (size > kMaxSmall) {
    chunks_.emplace_back(new uint8_t[size]);
    AddChunkBytes(size);
    return chunks_.back().get();
  }
  const size_t cls = ClassOf(size);
  if (!free_[cls].empty()) {
    uint8_t* span = free_[cls].back();
    free_[cls].pop_back();
    const size_t cap = kMinClass << cls;
    freelist_bytes_ -= cap;
    ARTHAS_RESOURCE_ADD("checkpoint.arena.freelist.bytes", "bytes",
                        -static_cast<int64_t>(cap));
    return span;
  }
  const size_t cap = kMinClass << cls;
  if (remaining_ < cap) {
    chunks_.emplace_back(new uint8_t[kChunkBytes]);
    AddChunkBytes(kChunkBytes);
    cursor_ = chunks_.back().get();
    remaining_ = kChunkBytes;
  }
  uint8_t* span = cursor_;
  cursor_ += cap;
  remaining_ -= cap;
  return span;
}

// --- CheckpointLog -----------------------------------------------------------

CheckpointLog::CheckpointLog(PmemPool& pool, CheckpointConfig config)
    : pool_(&pool),
      device_(&pool.device()),
      config_(config),
      log_id_(next_log_id.fetch_add(1)) {
  for (Shard& shard : shards_) {
    shard.arena.BindChunkCounter(&arena_bytes_);
  }
  device_->AddObserver(this);
  pool_->AddObserver(this);
}

CheckpointLog::~CheckpointLog() {
  Detach();
  // The shard arenas unwind their own cells; the index bytes are ours.
  ARTHAS_RESOURCE_ADD("checkpoint.index.bytes", "bytes",
                      -static_cast<int64_t>(index_bytes_.load()));
}

void CheckpointLog::Detach() {
  if (pool_ != nullptr) {
    device_->RemoveObserver(this);
    pool_->RemoveObserver(this);
    pool_ = nullptr;
  }
}

// Offset hash -> shard index. Offsets are persisted-range starts; mixing the
// cache-line index spreads neighboring objects across shards while keeping
// all persists of one address on one shard.
size_t CheckpointLog::ShardOf(PmOffset address) {
  const uint64_t line = address / kCacheLineSize;
  return (line * 0x9E3779B97F4A7C15ULL >> 32) % kNumShards;
}

void CheckpointLog::RaiseMaxExtent(size_t extent) {
  size_t cur = max_extent_.load(std::memory_order_relaxed);
  while (cur < extent &&
         !max_extent_.compare_exchange_weak(cur, extent,
                                            std::memory_order_relaxed)) {
  }
}

const CheckpointEntry* CheckpointLog::FindSlot(const Shard& shard,
                                               PmOffset address) {
  if (shard.buckets.empty()) {
    return nullptr;
  }
  const size_t mask = shard.buckets.size() - 1;
  for (size_t i = HashAddress(address) & mask;; i = (i + 1) & mask) {
    const uint32_t slot = shard.buckets[i];
    if (slot == 0) {
      return nullptr;
    }
    const CheckpointEntry& entry = shard.slots[slot - 1];
    if (entry.address == address) {
      return &entry;
    }
  }
}

CheckpointEntry* CheckpointLog::FindSlot(Shard& shard, PmOffset address) {
  return const_cast<CheckpointEntry*>(
      FindSlot(static_cast<const Shard&>(shard), address));
}

void CheckpointLog::InsertBucket(Shard& shard, PmOffset address,
                                 uint32_t slot) {
  const size_t mask = shard.buckets.size() - 1;
  size_t i = HashAddress(address) & mask;
  while (shard.buckets[i] != 0) {
    i = (i + 1) & mask;
  }
  shard.buckets[i] = slot;
}

void CheckpointLog::AddIndexBytes(size_t bytes) {
  index_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  ARTHAS_RESOURCE_ADD("checkpoint.index.bytes", "bytes", bytes);
}

// (Re)builds the bucket array sized so the next insert keeps load <= 3/4.
void CheckpointLog::RehashLocked(Shard& shard) {
  size_t cap = 64;
  while ((shard.slots.size() + 1) * 4 > cap * 3) {
    cap <<= 1;
  }
  if (cap > shard.buckets.size()) {
    AddIndexBytes((cap - shard.buckets.size()) * sizeof(uint32_t));
  }
  shard.buckets.assign(cap, 0);
  for (size_t i = 0; i < shard.slots.size(); i++) {
    InsertBucket(shard, shard.slots[i].address, static_cast<uint32_t>(i + 1));
  }
}

CheckpointEntry& CheckpointLog::GetOrCreateLocked(Shard& shard,
                                                  PmOffset address,
                                                  size_t size) {
  ARTHAS_PROFILE(kIndexLookup);
  if (CheckpointEntry* found = FindSlot(shard, address)) {
    return *found;
  }
  if (shard.buckets.empty() ||
      (shard.slots.size() + 1) * 4 > shard.buckets.size() * 3) {
    RehashLocked(shard);
  }
  shard.slots.emplace_back();
  CheckpointEntry& entry = shard.slots.back();
  entry.address = address;
  {
    // Seed the pre-history with what is durable right now (the observer
    // fires before the media copy, so this is the pre-update durable data).
    ARTHAS_PROFILE(kArenaCopy);
    entry.original.assign(device_->Durable(address),
                          device_->Durable(address) + size);
  }
  InsertBucket(shard, address, static_cast<uint32_t>(shard.slots.size()));
  entry_count_++;
  AddIndexBytes(sizeof(CheckpointEntry) + entry.original.size());
  return entry;
}

CheckpointLog::TxBuffer& CheckpointLog::LocalTxBuffer() const {
  thread_local std::unordered_map<uint64_t, TxBuffer*> tls_buffers;
  auto it = tls_buffers.find(log_id_);
  if (it == tls_buffers.end()) {
    auto owned = std::make_unique<TxBuffer>();
    TxBuffer* raw = owned.get();
    {
      std::lock_guard<std::mutex> aux(aux_mutex_);
      tx_buffers_.push_back(std::move(owned));
    }
    it = tls_buffers.emplace(log_id_, raw).first;
  }
  return *it->second;
}

void CheckpointLog::PublishTxBuffersLocked() const {
  for (const auto& buffer : tx_buffers_) {
    for (const auto& [seq, tx] : buffer->pairs) {
      seq_to_tx_[seq] = tx;
      tx_to_seqs_[tx].push_back(seq);
    }
    buffer->pairs.clear();
  }
}

void CheckpointLog::OnPersist(PmOffset offset, size_t size, const void* data) {
  Shard& shard = ShardFor(offset);
  const uint64_t tx_id = tls_open_tx.log == this ? tls_open_tx.tx_id : 0;
  SeqNum seq = kNoSeq;
  {
    std::unique_lock<std::mutex> lock(shard.mutex, std::defer_lock);
    {
      ARTHAS_PROFILE(kLockWait);
      lock.lock();
    }
    // Everything under the shard lock not claimed by a nested phase below
    // (index probe, arena copies) is ring/seq bookkeeping.
    ARTHAS_PROFILE(kBookkeeping);
    CheckpointEntry& entry = GetOrCreateLocked(shard, offset, size);
    // A larger persist at a known address (e.g. an object growing, or an
    // overrunning copy) extends the entry's extent: capture the still-durable
    // bytes beyond the previous extent so reversion can restore them.
    if (size > entry.original.size()) {
      ARTHAS_PROFILE(kArenaCopy);
      const size_t old_extent = entry.original.size();
      entry.original.insert(entry.original.end(),
                            device_->Durable(offset + old_extent),
                            device_->Durable(offset) + size);
      AddIndexBytes(size - old_extent);
    }
    CheckpointVersion version;
    // Allocated under the shard lock, so this shard's seq_index appends stay
    // sorted (the invariant LocateSeq's binary search relies on).
    seq = next_seq_.fetch_add(1);
    version.seq_num = seq;
    version.tx_id = tx_id;
    {
      ARTHAS_PROFILE(kArenaCopy);
      version.data =
          shard.arena.Store(static_cast<const uint8_t*>(data), size);
      // The observer fires before the media copy: the durable image still
      // holds this version's undo bytes.
      version.pre = shard.arena.Store(device_->Durable(offset), size);
    }
    if (static_cast<int>(entry.versions.size()) >= config_.max_versions) {
      // Ring is full: fold the evicted oldest version into the pre-history
      // (overlay, so a smaller version does not shrink the extent), then
      // recycle its arena spans.
      const CheckpointVersion evicted = entry.versions.front();
      if (evicted.data.size() > entry.original.size()) {
        AddIndexBytes(evicted.data.size() - entry.original.size());
        entry.original.resize(evicted.data.size());
      }
      std::copy(evicted.data.begin(), evicted.data.end(),
                entry.original.begin());
      entry.versions.erase(entry.versions.begin());
      shard.arena.Release(evicted.data);
      shard.arena.Release(evicted.pre);
      retained_versions_--;
      ARTHAS_PROFILE(kObsHook);
      ARTHAS_COUNTER_ADD("checkpoint.evict.count", 1);
      ARTHAS_FLIGHT_RECORD(obs::FrType::kCheckpointEvict,
                           device_->device_id(), offset, 0, evicted.seq_num);
    }
    shard.seq_index.emplace_back(seq, offset);
    AddIndexBytes(sizeof(std::pair<SeqNum, PmOffset>));
    entry.versions.push_back(version);
    retained_versions_++;
    RaiseMaxExtent(entry.original.size());
  }
  if (tx_id != 0) {
    // Lock-free on the persist path: staged locally, published at commit.
    ARTHAS_PROFILE(kBookkeeping);
    LocalTxBuffer().pairs.emplace_back(seq, tx_id);
  }
  ARTHAS_PROFILE(kObsHook);
  stats_.records++;
  stats_.bytes_copied += size;
  ARTHAS_FLIGHT_RECORD(obs::FrType::kCheckpointTake, device_->device_id(),
                       offset, size, seq);
  // Write-amplification accounting (Section 6.4): `copy.bytes` counts both
  // the new-version and undo copies the log makes per persisted range.
  ARTHAS_COUNTER_ADD("checkpoint.record.count", 1);
  ARTHAS_COUNTER_ADD("checkpoint.copy.bytes", 2 * size);
  ARTHAS_GAUGE_SET("checkpoint.versions.retained", retained_versions_.load());
  ARTHAS_GAUGE_SET("checkpoint.entries.count", entry_count_.load());
  // Capacity-plane names (the STATS `checkpoint.` prefix filter and the
  // growth analyzer read these; the two above predate the capacity plane).
  ARTHAS_GAUGE_SET("checkpoint.retained_versions", retained_versions_.load());
  ARTHAS_GAUGE_SET("checkpoint.arena_bytes", arena_bytes_.load());
  ARTHAS_RESOURCE_SET("checkpoint.retained.versions", "count",
                      retained_versions_.load());
}

void CheckpointLog::OnAlloc(PmOffset offset, size_t size) {
  std::lock_guard<std::mutex> aux(aux_mutex_);
  allocations_[offset] = AllocationRecord{offset, size, next_seq_.load(), false};
}

void CheckpointLog::OnFree(PmOffset offset, size_t /*size*/) {
  std::lock_guard<std::mutex> aux(aux_mutex_);
  auto it = allocations_.find(offset);
  if (it != allocations_.end()) {
    it->second.freed = true;
  }
}

void CheckpointLog::OnRealloc(PmOffset old_offset, size_t /*old_size*/,
                              PmOffset new_offset, size_t new_size) {
  {
    std::lock_guard<std::mutex> aux(aux_mutex_);
    // Lifetime tracking: the old object is gone, the new one is live.
    auto it = allocations_.find(old_offset);
    if (it != allocations_.end()) {
      it->second.freed = true;
    }
    allocations_[new_offset] =
        AllocationRecord{new_offset, new_size, next_seq_.load(), false};
  }
  // Entry linkage (paper Section 4.2 / Figure 5 old_entry field): connect
  // the checkpoint histories across the move. The two addresses may live in
  // different shards; lock both in ascending shard order.
  const size_t si_new = ShardOf(new_offset);
  const size_t si_old = ShardOf(old_offset);
  std::unique_lock<std::mutex> first(shards_[std::min(si_new, si_old)].mutex);
  std::unique_lock<std::mutex> second;
  if (si_new != si_old) {
    second = std::unique_lock<std::mutex>(
        shards_[std::max(si_new, si_old)].mutex);
  }
  CheckpointEntry& fresh =
      GetOrCreateLocked(shards_[si_new], new_offset, new_size);
  fresh.old_entry = old_offset;
  if (CheckpointEntry* old_entry = FindSlot(shards_[si_old], old_offset)) {
    old_entry->new_entry = new_offset;
  }
}

void CheckpointLog::OnTxBegin(uint64_t tx_id) {
  tls_open_tx = OpenTxTag{this, tx_id};
}

void CheckpointLog::OnTxCommit(uint64_t /*tx_id*/) {
  if (tls_open_tx.log != this) {
    return;
  }
  tls_open_tx = OpenTxTag{};
  // Publish this thread's staged attribution pairs. Only the owning thread
  // appends to its buffer, so taking aux here races with nothing but other
  // publishers.
  TxBuffer& buffer = LocalTxBuffer();
  if (buffer.pairs.empty()) {
    return;
  }
  std::lock_guard<std::mutex> aux(aux_mutex_);
  for (const auto& [seq, tx] : buffer.pairs) {
    seq_to_tx_[seq] = tx;
    tx_to_seqs_[tx].push_back(seq);
  }
  buffer.pairs.clear();
}

void CheckpointLog::ForEachEntry(
    const std::function<void(const CheckpointEntry&)>& fn) const {
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const CheckpointEntry& entry : shard.slots) {
      fn(entry);
    }
  }
}

std::map<PmOffset, CheckpointEntry> CheckpointLog::entries() const {
  std::map<PmOffset, CheckpointEntry> merged;
  ForEachEntry([&merged](const CheckpointEntry& entry) {
    merged.emplace(entry.address, entry);
  });
  return merged;
}

const CheckpointEntry* CheckpointLog::Find(PmOffset address) const {
  const Shard& shard = ShardFor(address);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return FindSlot(shard, address);
}

std::vector<const CheckpointEntry*> CheckpointLog::Overlapping(
    PmOffset offset, size_t size) const {
  // Entries are hash-indexed (no address order to exploit), but only those
  // starting within the largest recorded extent below the range end can
  // overlap, so the scan filters on [offset - max_extent, offset + size).
  // Reactor-side: linear in the shard's entry count, which is fine off the
  // hot path.
  std::vector<const CheckpointEntry*> out;
  const size_t max_extent = max_extent_.load();
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const CheckpointEntry& entry : shard.slots) {
      if (entry.address >= offset + size ||
          entry.address + max_extent <= offset) {
        continue;
      }
      const size_t extent = std::max(entry.original.size(),
                                     entry.versions.empty()
                                         ? size_t{0}
                                         : entry.versions.back().data.size());
      if (offset < entry.address + extent) {
        out.push_back(&entry);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CheckpointEntry* a, const CheckpointEntry* b) {
              return a->address < b->address;
            });
  return out;
}

std::optional<std::pair<PmOffset, int>> CheckpointLog::LocateSeq(
    SeqNum seq) const {
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto idx = std::lower_bound(
        shard.seq_index.begin(), shard.seq_index.end(), seq,
        [](const std::pair<SeqNum, PmOffset>& p, SeqNum s) {
          return p.first < s;
        });
    if (idx == shard.seq_index.end() || idx->first != seq) {
      continue;
    }
    const CheckpointEntry* entry = FindSlot(shard, idx->second);
    if (entry == nullptr) {
      return std::nullopt;
    }
    for (size_t i = 0; i < entry->versions.size(); i++) {
      if (entry->versions[i].seq_num == seq) {
        return std::make_pair(entry->address, static_cast<int>(i));
      }
    }
    return std::nullopt;  // version was discarded by an earlier reversion
  }
  return std::nullopt;
}

std::vector<SeqNum> CheckpointLog::SeqsInSameTx(SeqNum seq) const {
  std::lock_guard<std::mutex> aux(aux_mutex_);
  PublishTxBuffersLocked();
  auto it = seq_to_tx_.find(seq);
  if (it == seq_to_tx_.end()) {
    return {seq};
  }
  return tx_to_seqs_.at(it->second);
}

// Restores payload bytes, stepping around the allocator metadata the
// current heap layout places inside the range (see
// PmemPool::MetadataRangesIn).
void CheckpointLog::RestoreBytes(PmOffset address, const uint8_t* data,
                                 size_t size) {
  if (pool_ == nullptr) {
    device_->RawRestore(address, data, size);
    return;
  }
  size_t cursor = 0;
  for (const auto& [moff, msize] : pool_->MetadataRangesIn(address, size)) {
    const size_t rel = moff - address;
    if (rel > cursor) {
      device_->RawRestore(address + cursor, data + cursor, rel - cursor);
    }
    cursor = std::min(size, rel + msize);
  }
  if (cursor < size) {
    device_->RawRestore(address + cursor, data + cursor, size - cursor);
  }
}

SeqNum CheckpointLog::AllocationEpoch(PmOffset address) const {
  std::lock_guard<std::mutex> aux(aux_mutex_);
  auto it = allocations_.upper_bound(address);
  if (it == allocations_.begin()) {
    return kNoSeq;
  }
  --it;
  const AllocationRecord& record = it->second;
  if (record.freed || address >= record.offset + record.size) {
    return kNoSeq;
  }
  return record.alloc_seq;
}

// Reconstructs the bytes of the entry's full extent as they were after the
// first `upto` versions were applied (upto == 0 means the pre-history).
// Versions may have different sizes, so later/larger ones overlay the base.
// The base respects allocation epochs: if any retained version predates the
// current allocation at this address, the bytes before the object's first
// in-epoch update are its Zalloc birth state (zeros), not the previous
// occupant's remains.
std::vector<uint8_t> CheckpointLog::ReconstructState(
    const CheckpointEntry& entry, size_t upto) const {
  const SeqNum epoch = AllocationEpoch(entry.address);
  size_t first_valid = 0;
  if (epoch != kNoSeq) {
    while (first_valid < entry.versions.size() &&
           entry.versions[first_valid].seq_num < epoch) {
      first_valid++;
    }
  }
  std::vector<uint8_t> state = entry.original;
  if (first_valid > 0) {
    // Zero the birth state of the *current* object only; bytes of the
    // extent beyond its allocation (e.g. a neighbor clobbered by an
    // overrun, captured when the extent grew) keep their pre-history.
    size_t zero_end = state.size();
    std::lock_guard<std::mutex> aux(aux_mutex_);
    auto it = allocations_.upper_bound(entry.address);
    if (it != allocations_.begin()) {
      --it;
      const AllocationRecord& record = it->second;
      if (!record.freed && entry.address < record.offset + record.size) {
        zero_end = std::min<size_t>(
            zero_end, record.offset + record.size - entry.address);
      }
    }
    std::fill(state.begin(),
              state.begin() + static_cast<ptrdiff_t>(zero_end), 0);
  }
  for (size_t v = first_valid; v < upto && v < entry.versions.size(); v++) {
    const PayloadRef data = entry.versions[v].data;
    if (data.size() > state.size()) {
      state.resize(data.size());
    }
    std::copy(data.begin(), data.end(), state.begin());
  }
  return state;
}

Result<bool> CheckpointLog::RevertSeq(SeqNum seq) {
  auto loc = LocateSeq(seq);
  if (!loc.has_value()) {
    return NotFound("sequence number " + std::to_string(seq) +
                    " not in checkpoint log (version evicted or never "
                    "recorded)");
  }
  // Caller-serialized (see header): no shard lock is held while the device's
  // raw-restore path runs.
  Shard& shard = ShardFor(loc->first);
  CheckpointEntry& entry = *FindSlot(shard, loc->first);
  const int idx = loc->second;
  // Divergence rule: if the bytes currently at the address no longer match
  // what this version checkpointed, the state was corrupted *after* the
  // persist (e.g. a hardware bit flip written back by an unrelated flush).
  // Reverting then means restoring this checkpointed good version, not
  // stepping behind it (paper: "revert problematic PM states to good
  // versions").
  const CheckpointVersion& checked = entry.versions[idx];
  const bool is_newest = idx == static_cast<int>(entry.versions.size()) - 1;
  // Divergence comparison masks out allocator metadata under the current
  // heap layout: blocks carved inside the range after the persist are
  // legitimate churn, not corruption.
  auto diverged_from = [&](PayloadRef data) {
    size_t cursor = 0;
    auto differs = [&](size_t lo, size_t hi) {
      return std::memcmp(device_->Live(entry.address + lo), data.data() + lo,
                         hi - lo) != 0;
    };
    if (pool_ != nullptr) {
      for (const auto& [moff, msize] :
           pool_->MetadataRangesIn(entry.address, data.size())) {
        const size_t rel = moff - entry.address;
        if (rel > cursor && differs(cursor, rel)) {
          return true;
        }
        cursor = std::min(data.size(), rel + msize);
      }
    }
    return cursor < data.size() && differs(cursor, data.size());
  };
  // Erases versions [from, end) and recycles their arena spans. Valid only
  // after every use of the spans (including `checked`'s) is done.
  auto discard_from = [&](size_t from) {
    for (size_t i = from; i < entry.versions.size(); i++) {
      shard.arena.Release(entry.versions[i].data);
      shard.arena.Release(entry.versions[i].pre);
    }
    entry.versions.erase(entry.versions.begin() + static_cast<ptrdiff_t>(from),
                         entry.versions.end());
  };
  if (is_newest && diverged_from(checked.data)) {
    RestoreBytes(entry.address, checked.data.data(), checked.data.size());
    const auto discarded =
        entry.versions.size() - static_cast<size_t>(idx) - 1;
    stats_.reverted_updates += discarded + 1;
    discard_from(static_cast<size_t>(idx) + 1);
    retained_versions_ -= discarded;
    ARTHAS_COUNTER_ADD("checkpoint.revert.count", discarded + 1);
    ARTHAS_GAUGE_SET("checkpoint.versions.retained",
                     retained_versions_.load());
    ARTHAS_GAUGE_SET("checkpoint.retained_versions",
                     retained_versions_.load());
    ARTHAS_RESOURCE_SET("checkpoint.retained.versions", "count",
                        retained_versions_.load());
    ARTHAS_FLIGHT_RECORD(obs::FrType::kCheckpointRevert,
                         device_->device_id(), entry.address, discarded + 1,
                         seq, obs::FrReason::kDivergence);
    return true;  // divergence restore
  }
  // Restore the pre-state of exactly the byte range this version persisted
  // (the entry's per-version sizes — paper Figure 5). Writing the entry's
  // whole extent would undo co-located updates the program persisted
  // separately, which purge mode must not do. The version's captured undo
  // bytes are authoritative within its range; the reconstructed chain
  // covers any extent beyond it.
  std::vector<uint8_t> state =
      ReconstructState(entry, static_cast<size_t>(idx));
  if (checked.pre.size() > state.size()) {
    state.resize(checked.pre.size());
  }
  std::copy(checked.pre.begin(), checked.pre.end(), state.begin());
  const size_t span = std::max(checked.data.size(), checked.pre.size());
  RestoreBytes(entry.address, state.data(), std::min(span, state.size()));
  const auto discarded = entry.versions.size() - static_cast<size_t>(idx);
  stats_.reverted_updates += discarded;
  discard_from(static_cast<size_t>(idx));
  retained_versions_ -= discarded;
  ARTHAS_COUNTER_ADD("checkpoint.revert.count", discarded);
  ARTHAS_GAUGE_SET("checkpoint.versions.retained", retained_versions_.load());
  ARTHAS_GAUGE_SET("checkpoint.retained_versions", retained_versions_.load());
  ARTHAS_RESOURCE_SET("checkpoint.retained.versions", "count",
                      retained_versions_.load());
  ARTHAS_FLIGHT_RECORD(obs::FrType::kCheckpointRevert, device_->device_id(),
                       entry.address, discarded, seq);
  return false;
}

Result<uint64_t> CheckpointLog::RollbackToSeq(SeqNum seq) {
  uint64_t discarded = 0;
  for (Shard& shard : shards_) {
    for (CheckpointEntry& entry : shard.slots) {
      int first_newer = -1;
      for (size_t i = 0; i < entry.versions.size(); i++) {
        if (entry.versions[i].seq_num >= seq) {
          first_newer = static_cast<int>(i);
          break;
        }
      }
      if (first_newer < 0) {
        continue;
      }
      std::vector<uint8_t> restore =
          ReconstructState(entry, static_cast<size_t>(first_newer));
      const PayloadRef pre = entry.versions[first_newer].pre;
      if (pre.size() > restore.size()) {
        restore.resize(pre.size());
      }
      std::copy(pre.begin(), pre.end(), restore.begin());
      RestoreBytes(entry.address, restore.data(), restore.size());
      discarded += entry.versions.size() - static_cast<size_t>(first_newer);
      for (size_t i = static_cast<size_t>(first_newer);
           i < entry.versions.size(); i++) {
        shard.arena.Release(entry.versions[i].data);
        shard.arena.Release(entry.versions[i].pre);
      }
      entry.versions.erase(entry.versions.begin() + first_newer,
                           entry.versions.end());
    }
  }
  stats_.reverted_updates += discarded;
  retained_versions_ -= discarded;
  ARTHAS_COUNTER_ADD("checkpoint.revert.count", discarded);
  ARTHAS_GAUGE_SET("checkpoint.versions.retained", retained_versions_.load());
  ARTHAS_GAUGE_SET("checkpoint.retained_versions", retained_versions_.load());
  ARTHAS_RESOURCE_SET("checkpoint.retained.versions", "count",
                      retained_versions_.load());
  ARTHAS_FLIGHT_RECORD(obs::FrType::kCheckpointRollback,
                       device_->device_id(), 0, discarded, seq);
  return discarded;
}

SeqNum CheckpointLog::NewestSeqAt(PmOffset address) const {
  const Shard& shard = ShardFor(address);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const CheckpointEntry* entry = FindSlot(shard, address);
  if (entry == nullptr || entry->versions.empty()) {
    return kNoSeq;
  }
  return entry->versions.back().seq_num;
}

SeqNum CheckpointLog::NewestRetainedSeq() const {
  SeqNum newest = kNoSeq;
  ForEachEntry([&newest](const CheckpointEntry& entry) {
    if (!entry.versions.empty()) {
      newest = std::max(newest, entry.versions.back().seq_num);
    }
  });
  return newest;
}

Status CheckpointLog::RevertLatestAt(PmOffset address) {
  const SeqNum seq = NewestSeqAt(address);
  if (seq == kNoSeq) {
    return NotFound("no retained versions at address " +
                    std::to_string(address));
  }
  return RevertSeq(seq).status();
}

std::vector<AllocationRecord> CheckpointLog::UnfreedAllocations() const {
  std::lock_guard<std::mutex> aux(aux_mutex_);
  std::vector<AllocationRecord> out;
  for (const auto& [offset, record] : allocations_) {
    if (!record.freed) {
      out.push_back(record);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const AllocationRecord& a, const AllocationRecord& b) {
              return a.alloc_seq < b.alloc_seq;
            });
  return out;
}

}  // namespace arthas
