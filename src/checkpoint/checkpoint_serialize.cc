// Serialization of the checkpoint log (see checkpoint_log.h). A simple
// length-prefixed binary format with a magic/version header; everything the
// reactor needs to plan reversions after a reactor-process restart is
// included: entries with their version rings (data + undo bytes + sequence
// and transaction ids), the realloc links, transaction groups, allocation
// records, and the sequence counter.

#include <array>
#include <cstring>

#include "checkpoint/checkpoint_log.h"
#include "common/clock.h"
#include "obs/obs.h"

namespace arthas {

namespace {
constexpr uint64_t kLogMagic = 0x41525448'434b5031ULL;  // "ARTHCKP1"

class Writer {
 public:
  void U64(uint64_t v) {
    const size_t at = bytes.size();
    bytes.resize(at + 8);
    std::memcpy(bytes.data() + at, &v, 8);
  }
  void Blob(const std::vector<uint8_t>& data) {
    U64(data.size());
    bytes.insert(bytes.end(), data.begin(), data.end());
  }
  std::vector<uint8_t> bytes;
};

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  bool U64(uint64_t* v) {
    if (at_ + 8 > bytes_.size()) {
      return false;
    }
    std::memcpy(v, bytes_.data() + at_, 8);
    at_ += 8;
    return true;
  }
  bool Blob(std::vector<uint8_t>* data) {
    uint64_t size = 0;
    if (!U64(&size) || at_ + size > bytes_.size()) {
      return false;
    }
    data->assign(bytes_.begin() + static_cast<ptrdiff_t>(at_),
                 bytes_.begin() + static_cast<ptrdiff_t>(at_ + size));
    at_ += size;
    return true;
  }
  bool Done() const { return at_ == bytes_.size(); }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t at_ = 0;
};
}  // namespace

std::vector<uint8_t> CheckpointLog::Serialize() const {
  ScopedTimer timer;
  Writer w;
  w.U64(kLogMagic);
  w.U64(next_seq_.load());
  w.U64(static_cast<uint64_t>(config_.max_versions));

  // Merge the shards into one address-ordered sequence (the shards hold
  // hash-disjoint address sets, so this is the global order the
  // single-threaded log wrote directly). The per-version sequence numbers
  // come from one atomic counter and need no renumbering.
  std::map<PmOffset, const CheckpointEntry*> merged;
  for (const Shard& shard : shards_) {
    for (const auto& [address, entry] : shard.entries) {
      merged.emplace(address, &entry);
    }
  }
  w.U64(merged.size());
  for (const auto& [address, entry_ptr] : merged) {
    const CheckpointEntry& entry = *entry_ptr;
    w.U64(address);
    w.Blob(entry.original);
    w.U64(entry.old_entry);
    w.U64(entry.new_entry);
    w.U64(entry.versions.size());
    for (const CheckpointVersion& v : entry.versions) {
      w.U64(v.seq_num);
      w.U64(v.tx_id);
      w.Blob(v.data);
      w.Blob(v.pre);
    }
  }

  w.U64(allocations_.size());
  for (const auto& [offset, record] : allocations_) {
    w.U64(record.offset);
    w.U64(record.size);
    w.U64(record.alloc_seq);
    w.U64(record.freed ? 1 : 0);
  }

  w.U64(seq_to_tx_.size());
  for (const auto& [seq, tx] : seq_to_tx_) {
    w.U64(seq);
    w.U64(tx);
  }
  ARTHAS_HISTOGRAM_RECORD("checkpoint.serialize.ns", timer.ElapsedNanos());
  ARTHAS_GAUGE_SET("checkpoint.image.bytes", w.bytes.size());
  ARTHAS_COUNTER_ADD("checkpoint.serialize.count", 1);
  return std::move(w.bytes);
}

Status CheckpointLog::Restore(const std::vector<uint8_t>& image) {
  Reader r(image);
  uint64_t magic = 0;
  uint64_t next_seq = 0;
  uint64_t max_versions = 0;
  if (!r.U64(&magic) || magic != kLogMagic) {
    return Corruption("bad checkpoint-log image magic");
  }
  if (!r.U64(&next_seq) || !r.U64(&max_versions)) {
    return Corruption("truncated checkpoint-log header");
  }

  // Parsed entries, distributed back into their shards at the end (the
  // shard assignment is a pure function of the address).
  std::array<std::map<PmOffset, CheckpointEntry>, kNumShards> entries;
  std::array<std::map<SeqNum, PmOffset>, kNumShards> seq_index;
  uint64_t entry_count = 0;
  if (!r.U64(&entry_count)) {
    return Corruption("truncated entry count");
  }
  size_t max_extent = 0;
  for (uint64_t i = 0; i < entry_count; i++) {
    CheckpointEntry entry;
    uint64_t version_count = 0;
    if (!r.U64(&entry.address) || !r.Blob(&entry.original) ||
        !r.U64(&entry.old_entry) || !r.U64(&entry.new_entry) ||
        !r.U64(&version_count)) {
      return Corruption("truncated entry");
    }
    const size_t si = ShardOf(entry.address);
    for (uint64_t v = 0; v < version_count; v++) {
      CheckpointVersion version;
      if (!r.U64(&version.seq_num) || !r.U64(&version.tx_id) ||
          !r.Blob(&version.data) || !r.Blob(&version.pre)) {
        return Corruption("truncated version");
      }
      seq_index[si][version.seq_num] = entry.address;
      entry.versions.push_back(std::move(version));
    }
    max_extent = std::max(max_extent, entry.original.size());
    entries[si].emplace(entry.address, std::move(entry));
  }

  std::map<PmOffset, AllocationRecord> allocations;
  uint64_t alloc_count = 0;
  if (!r.U64(&alloc_count)) {
    return Corruption("truncated allocation count");
  }
  for (uint64_t i = 0; i < alloc_count; i++) {
    AllocationRecord record;
    uint64_t size = 0;
    uint64_t freed = 0;
    if (!r.U64(&record.offset) || !r.U64(&size) || !r.U64(&record.alloc_seq) ||
        !r.U64(&freed)) {
      return Corruption("truncated allocation record");
    }
    record.size = size;
    record.freed = freed != 0;
    allocations.emplace(record.offset, record);
  }

  std::map<SeqNum, uint64_t> seq_to_tx;
  std::map<uint64_t, std::vector<SeqNum>> tx_to_seqs;
  uint64_t tx_count = 0;
  if (!r.U64(&tx_count)) {
    return Corruption("truncated tx map");
  }
  for (uint64_t i = 0; i < tx_count; i++) {
    uint64_t seq = 0;
    uint64_t tx = 0;
    if (!r.U64(&seq) || !r.U64(&tx)) {
      return Corruption("truncated tx entry");
    }
    seq_to_tx[seq] = tx;
    tx_to_seqs[tx].push_back(seq);
  }
  if (!r.Done()) {
    return Corruption("trailing bytes in checkpoint-log image");
  }

  uint64_t total_entries = 0;
  for (size_t si = 0; si < kNumShards; si++) {
    std::lock_guard<std::mutex> lock(shards_[si].mutex);
    total_entries += entries[si].size();
    shards_[si].entries = std::move(entries[si]);
    shards_[si].seq_index = std::move(seq_index[si]);
  }
  {
    std::lock_guard<std::mutex> aux(aux_mutex_);
    allocations_ = std::move(allocations);
    seq_to_tx_ = std::move(seq_to_tx);
    tx_to_seqs_ = std::move(tx_to_seqs);
  }
  next_seq_ = next_seq;
  entry_count_ = total_entries;
  config_.max_versions = static_cast<int>(max_versions);
  max_extent_ = max_extent;
  return OkStatus();
}

}  // namespace arthas
