// Serialization of the checkpoint log (see checkpoint_log.h). A simple
// length-prefixed binary format with a magic/version header; everything the
// reactor needs to plan reversions after a reactor-process restart is
// included: entries with their version rings (data + undo bytes + sequence
// and transaction ids), the realloc links, transaction groups, allocation
// records, and the sequence counter.
//
// Serialize streams the shards through ForEachEntry in shard/slot order —
// no merged address-ordered map is materialized (Restore redistributes by
// ShardOf, a pure function of the address, so the on-wire entry order is
// irrelevant). The per-version sequence numbers come from one atomic
// counter and need no renumbering.

#include <algorithm>
#include <array>
#include <cstring>

#include "checkpoint/checkpoint_log.h"
#include "common/clock.h"
#include "obs/obs.h"
#include "obs/resource/resource_accountant.h"

namespace arthas {

namespace {
constexpr uint64_t kLogMagic = 0x41525448'434b5031ULL;  // "ARTHCKP1"

class Writer {
 public:
  void U64(uint64_t v) {
    const size_t at = bytes.size();
    bytes.resize(at + 8);
    std::memcpy(bytes.data() + at, &v, 8);
  }
  void Blob(const uint8_t* data, size_t size) {
    U64(size);
    bytes.insert(bytes.end(), data, data + size);
  }
  void Blob(const std::vector<uint8_t>& data) {
    Blob(data.data(), data.size());
  }
  void Blob(PayloadRef data) { Blob(data.data(), data.size()); }
  std::vector<uint8_t> bytes;
};

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  bool U64(uint64_t* v) {
    if (at_ + 8 > bytes_.size()) {
      return false;
    }
    std::memcpy(v, bytes_.data() + at_, 8);
    at_ += 8;
    return true;
  }
  bool Blob(std::vector<uint8_t>* data) {
    uint64_t size = 0;
    if (!U64(&size) || at_ + size > bytes_.size()) {
      return false;
    }
    data->assign(bytes_.begin() + static_cast<ptrdiff_t>(at_),
                 bytes_.begin() + static_cast<ptrdiff_t>(at_ + size));
    at_ += size;
    return true;
  }
  bool Done() const { return at_ == bytes_.size(); }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t at_ = 0;
};

// Parsed-but-not-committed entry: payloads still own their bytes (they move
// into the target shard's arena only once the whole image parses cleanly).
struct StagedVersion {
  SeqNum seq_num = kNoSeq;
  uint64_t tx_id = 0;
  std::vector<uint8_t> data;
  std::vector<uint8_t> pre;
};
struct StagedEntry {
  PmOffset address = kNullPmOffset;
  std::vector<uint8_t> original;
  PmOffset old_entry = kNullPmOffset;
  PmOffset new_entry = kNullPmOffset;
  std::vector<StagedVersion> versions;
};
}  // namespace

std::vector<uint8_t> CheckpointLog::Serialize() const {
  ScopedTimer timer;
  Writer w;
  w.U64(kLogMagic);
  w.U64(next_seq_.load());
  w.U64(static_cast<uint64_t>(config_.max_versions));

  w.U64(entry_count_.load());
  ForEachEntry([&w](const CheckpointEntry& entry) {
    w.U64(entry.address);
    w.Blob(entry.original);
    w.U64(entry.old_entry);
    w.U64(entry.new_entry);
    w.U64(entry.versions.size());
    for (const CheckpointVersion& v : entry.versions) {
      w.U64(v.seq_num);
      w.U64(v.tx_id);
      w.Blob(v.data);
      w.Blob(v.pre);
    }
  });

  std::lock_guard<std::mutex> aux(aux_mutex_);
  // Fold any still-staged per-thread seq->tx pairs (e.g. from a transaction
  // whose commit hook ran on a thread that never published) into the maps
  // before writing them out. Caller-serialized, so no thread is appending.
  PublishTxBuffersLocked();
  w.U64(allocations_.size());
  for (const auto& [offset, record] : allocations_) {
    w.U64(record.offset);
    w.U64(record.size);
    w.U64(record.alloc_seq);
    w.U64(record.freed ? 1 : 0);
  }

  w.U64(seq_to_tx_.size());
  for (const auto& [seq, tx] : seq_to_tx_) {
    w.U64(seq);
    w.U64(tx);
  }
  ARTHAS_HISTOGRAM_RECORD("checkpoint.serialize.ns", timer.ElapsedNanos());
  ARTHAS_GAUGE_SET("checkpoint.image.bytes", w.bytes.size());
  ARTHAS_COUNTER_ADD("checkpoint.serialize.count", 1);
  return std::move(w.bytes);
}

Status CheckpointLog::Restore(const std::vector<uint8_t>& image) {
  Reader r(image);
  uint64_t magic = 0;
  uint64_t next_seq = 0;
  uint64_t max_versions = 0;
  if (!r.U64(&magic) || magic != kLogMagic) {
    return Corruption("bad checkpoint-log image magic");
  }
  if (!r.U64(&next_seq) || !r.U64(&max_versions)) {
    return Corruption("truncated checkpoint-log header");
  }

  // Parse everything into staging storage first, so a truncated image never
  // leaves the log half-replaced; entries are distributed to their shards
  // at commit time (the shard assignment is a pure function of the
  // address).
  std::array<std::vector<StagedEntry>, kNumShards> staged;
  uint64_t entry_count = 0;
  if (!r.U64(&entry_count)) {
    return Corruption("truncated entry count");
  }
  size_t max_extent = 0;
  for (uint64_t i = 0; i < entry_count; i++) {
    StagedEntry entry;
    uint64_t version_count = 0;
    if (!r.U64(&entry.address) || !r.Blob(&entry.original) ||
        !r.U64(&entry.old_entry) || !r.U64(&entry.new_entry) ||
        !r.U64(&version_count)) {
      return Corruption("truncated entry");
    }
    for (uint64_t v = 0; v < version_count; v++) {
      StagedVersion version;
      if (!r.U64(&version.seq_num) || !r.U64(&version.tx_id) ||
          !r.Blob(&version.data) || !r.Blob(&version.pre)) {
        return Corruption("truncated version");
      }
      entry.versions.push_back(std::move(version));
    }
    max_extent = std::max(max_extent, entry.original.size());
    staged[ShardOf(entry.address)].push_back(std::move(entry));
  }

  std::map<PmOffset, AllocationRecord> allocations;
  uint64_t alloc_count = 0;
  if (!r.U64(&alloc_count)) {
    return Corruption("truncated allocation count");
  }
  for (uint64_t i = 0; i < alloc_count; i++) {
    AllocationRecord record;
    uint64_t size = 0;
    uint64_t freed = 0;
    if (!r.U64(&record.offset) || !r.U64(&size) || !r.U64(&record.alloc_seq) ||
        !r.U64(&freed)) {
      return Corruption("truncated allocation record");
    }
    record.size = size;
    record.freed = freed != 0;
    allocations.emplace(record.offset, record);
  }

  std::map<SeqNum, uint64_t> seq_to_tx;
  std::map<uint64_t, std::vector<SeqNum>> tx_to_seqs;
  uint64_t tx_count = 0;
  if (!r.U64(&tx_count)) {
    return Corruption("truncated tx map");
  }
  for (uint64_t i = 0; i < tx_count; i++) {
    uint64_t seq = 0;
    uint64_t tx = 0;
    if (!r.U64(&seq) || !r.U64(&tx)) {
      return Corruption("truncated tx entry");
    }
    seq_to_tx[seq] = tx;
    tx_to_seqs[tx].push_back(seq);
  }
  if (!r.Done()) {
    return Corruption("trailing bytes in checkpoint-log image");
  }

  uint64_t total_entries = 0;
  uint64_t total_versions = 0;
  // The rebuild replaces the whole index: restart its byte accounting and
  // let the per-entry adds and RehashLocked re-accumulate it.
  ARTHAS_RESOURCE_ADD("checkpoint.index.bytes", "bytes",
                      -static_cast<int64_t>(index_bytes_.load()));
  index_bytes_.store(0);
  for (size_t si = 0; si < kNumShards; si++) {
    std::lock_guard<std::mutex> lock(shards_[si].mutex);
    Shard& shard = shards_[si];
    shard.slots.clear();
    shard.buckets.clear();
    shard.seq_index.clear();
    shard.arena.Clear();
    for (StagedEntry& src : staged[si]) {
      shard.slots.emplace_back();
      CheckpointEntry& dst = shard.slots.back();
      dst.address = src.address;
      dst.original = std::move(src.original);
      dst.old_entry = src.old_entry;
      dst.new_entry = src.new_entry;
      AddIndexBytes(sizeof(CheckpointEntry) + dst.original.size());
      for (const StagedVersion& sv : src.versions) {
        CheckpointVersion version;
        version.seq_num = sv.seq_num;
        version.tx_id = sv.tx_id;
        version.data = shard.arena.Store(sv.data.data(), sv.data.size());
        version.pre = shard.arena.Store(sv.pre.data(), sv.pre.size());
        dst.versions.push_back(version);
        shard.seq_index.emplace_back(sv.seq_num, dst.address);
        AddIndexBytes(sizeof(std::pair<SeqNum, PmOffset>));
        total_versions++;
      }
    }
    // On-wire entry order is arbitrary relative to this shard's history, so
    // re-sort the seq slice to restore the binary-search invariant.
    std::sort(shard.seq_index.begin(), shard.seq_index.end());
    RehashLocked(shard);
    total_entries += shard.slots.size();
  }
  {
    std::lock_guard<std::mutex> aux(aux_mutex_);
    // Staged pairs from the pre-restore history must not leak into the
    // restored maps.
    for (const auto& buffer : tx_buffers_) {
      buffer->pairs.clear();
    }
    allocations_ = std::move(allocations);
    seq_to_tx_ = std::move(seq_to_tx);
    tx_to_seqs_ = std::move(tx_to_seqs);
  }
  next_seq_ = next_seq;
  entry_count_ = total_entries;
  retained_versions_ = total_versions;
  config_.max_versions = static_cast<int>(max_versions);
  max_extent_ = max_extent;
  return OkStatus();
}

}  // namespace arthas
