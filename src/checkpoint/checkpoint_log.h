// PM-aware fine-grained checkpointing with versioning (paper Section 4.2).
//
// Unlike CRIU/Flashback-style coarse snapshots, the Arthas checkpoint log
// versions PM state *per program variable/address*, eagerly at each
// persistence point. The log entry mirrors the paper's Figure 5: the PM
// address, a ring of up to MAX_VERSIONS data versions with per-version sizes
// and logical sequence numbers, and old_entry/new_entry links created by
// reallocation.
//
// Both the granularity and timing follow the target program: the log
// subscribes to the pool's durability events, so an entry is created exactly
// for the byte range the program chose to persist, exactly when the persist
// (or transaction commit) succeeds. Updates that never reach a durability
// point are never checkpointed — they would not survive a crash anyway.
//
// In the paper the log lives in a dedicated PM region. Here it lives in the
// Arthas runtime (outside the simulated pool), which models the same thing:
// it survives target-system crashes because the reactor's process is not the
// target's process.
//
// Concurrency model (see DESIGN.md "Concurrency model"):
//   * The per-address entry map is sharded by offset hash with a lock per
//     shard, so OnPersist callbacks from concurrent flushers never contend
//     on one map. Sequence numbers come from one atomic counter (a global
//     total order; 1,2,3,... single-threaded); each shard keeps its slice of
//     the seq->address index, merged into the global order at serialize
//     time.
//   * Observer callbacks (OnPersist/OnAlloc/...) are thread-safe. Lock
//     order: device stripes -> entry shard -> aux mutex (allocation and
//     transaction maps).
//   * Transaction attribution is per-thread: begin/persist/commit of one
//     transaction run on the thread executing it.
//   * The reversion primitives (RevertSeq/RollbackToSeq/RevertLatestAt) and
//     Serialize/Restore are caller-serialized: the reactor quiesces worker
//     threads before reverting, as a real recovery process owns the pool
//     exclusively. They touch the device's raw-restore path, which must not
//     run under shard locks (it takes device stripes).
//   * Find/Overlapping return pointers into the log; entries are never
//     erased (only Restore replaces them), so the pointers stay valid, but
//     reading them races with concurrent flushers — reactor-side use only.

#ifndef ARTHAS_CHECKPOINT_CHECKPOINT_LOG_H_
#define ARTHAS_CHECKPOINT_CHECKPOINT_LOG_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.h"
#include "pmem/pool.h"

namespace arthas {

// A logical timestamp ordering all checkpointed PM updates.
using SeqNum = uint64_t;
constexpr SeqNum kNoSeq = 0;

struct CheckpointConfig {
  // Maximum retained versions per entry (paper default: 3).
  int max_versions = 3;
};

// One retained version of a PM address range.
struct CheckpointVersion {
  SeqNum seq_num = kNoSeq;
  uint64_t tx_id = 0;  // 0 when the update was outside any transaction
  std::vector<uint8_t> data;
  // Durable bytes of the same range captured immediately before this
  // persist: the authoritative undo data for this version. Covers writes
  // that bypassed checkpointing (allocator metadata carved inside a
  // previously-persisted range, address reuse after free, external
  // corruption), which the version chain alone cannot reconstruct.
  std::vector<uint8_t> pre;
};

// Per-address log entry (paper Figure 5).
struct CheckpointEntry {
  PmOffset address = kNullPmOffset;
  // Bytes that were durable at this address before the first retained
  // version (version "-1"); reverting the oldest version restores these.
  std::vector<uint8_t> original;
  // Oldest-first ring of retained versions (newest at the back).
  std::vector<CheckpointVersion> versions;
  // Realloc linkage.
  PmOffset old_entry = kNullPmOffset;
  PmOffset new_entry = kNullPmOffset;
};

// Fields are atomics so the harness can read them while flushers record.
struct CheckpointStats {
  std::atomic<uint64_t> records{0};  // persists checkpointed
  std::atomic<uint64_t> bytes_copied{0};
  std::atomic<uint64_t> reverted_updates{0};  // versions undone by reversion
};

// Tracks object lifetimes for the leak-mitigation workflow (Section 4.7).
struct AllocationRecord {
  PmOffset offset = kNullPmOffset;
  size_t size = 0;
  SeqNum alloc_seq = kNoSeq;
  bool freed = false;
};

class CheckpointLog : public DurabilityObserver, public PoolObserver {
 public:
  // Attaches to the pool's device and pool observers. Detaches in the
  // destructor.
  CheckpointLog(PmemPool& pool, CheckpointConfig config = {});
  ~CheckpointLog() override;

  CheckpointLog(const CheckpointLog&) = delete;
  CheckpointLog& operator=(const CheckpointLog&) = delete;

  // --- Observer hooks (called by the pmem layer) ---------------------------
  void OnPersist(PmOffset offset, size_t size, const void* data) override;
  void OnAlloc(PmOffset offset, size_t size) override;
  void OnFree(PmOffset offset, size_t size) override;
  void OnRealloc(PmOffset old_offset, size_t old_size, PmOffset new_offset,
                 size_t new_size) override;
  void OnTxBegin(uint64_t tx_id) override;
  void OnTxCommit(uint64_t tx_id) override;

  // --- Queries (used by the reactor) ---------------------------------------

  // Snapshot of all entries, merged across shards into address order.
  std::map<PmOffset, CheckpointEntry> entries() const;

  // Number of distinct addresses with a log entry.
  size_t entry_count() const { return entry_count_.load(); }

  // Entry at exactly `address`, or nullptr.
  const CheckpointEntry* Find(PmOffset address) const;

  // Entries whose recorded range overlaps [offset, offset+size).
  std::vector<const CheckpointEntry*> Overlapping(PmOffset offset,
                                                  size_t size) const;

  // The (entry address, version index) holding sequence number `seq`.
  std::optional<std::pair<PmOffset, int>> LocateSeq(SeqNum seq) const;

  // Sequence numbers recorded within the same transaction as `seq`
  // (including `seq` itself); just {seq} if it was not transactional.
  std::vector<SeqNum> SeqsInSameTx(SeqNum seq) const;

  // Largest sequence number issued so far.
  SeqNum LatestSeq() const { return next_seq_.load() - 1; }

  // --- Reversion primitives (used by the reactor) ---------------------------
  //
  // Caller-serialized: quiesce concurrent flushers first (the reactor's
  // recovery process owns the pool exclusively).

  // Undoes the update with sequence number `seq`: restores the previous
  // version's bytes (or the original bytes) at the entry's address, in both
  // the live and durable images. Newer retained versions of the same entry
  // are discarded (they were built on the reverted value).
  //
  // Returns true when the *divergence rule* fired instead: the bytes at the
  // address no longer matched what this (newest) version persisted — the
  // state was corrupted outside program order (e.g. a written-back bit
  // flip) — and reverting restored the checkpointed good version itself.
  Result<bool> RevertSeq(SeqNum seq);

  // Time-ordered rollback: undoes *every* update with sequence number
  // >= `seq` (ArCkpt/rollback-mode building block). Returns the number of
  // updates discarded.
  Result<uint64_t> RollbackToSeq(SeqNum seq);

  // Sequence number of the newest retained version at `address`, or kNoSeq.
  SeqNum NewestSeqAt(PmOffset address) const;

  // Newest retained sequence number across all entries, or kNoSeq.
  SeqNum NewestRetainedSeq() const;

  // Reverts the newest retained version at `address` (the reactor's
  // "try an older version v-2 ..." step, paper Section 4.5).
  Status RevertLatestAt(PmOffset address);

  // --- Leak mitigation support ----------------------------------------------

  // All allocations never freed, oldest first.
  std::vector<AllocationRecord> UnfreedAllocations() const;

  // Sequence number at which the allocation currently covering `address`
  // was made (kNoSeq when unknown). Versions recorded before this epoch
  // belong to a *previous object* that lived at the same address; reverting
  // must not resurrect its bytes into the current object.
  SeqNum AllocationEpoch(PmOffset address) const;

  const CheckpointStats& stats() const { return stats_; }

  // Detach from the pool without destroying recorded state (used when the
  // overhead benchmarks want a vanilla run after an instrumented one).
  void Detach();

  // --- Log persistence ------------------------------------------------------
  //
  // In the paper the checkpoint log itself lives in a persistent region, so
  // a reactor restart does not lose the versioned history. These serialize
  // the log (entries, versions with undo bytes, tx groups, allocation
  // records) to a byte buffer and restore it into a freshly attached log.
  // Caller-serialized.
  std::vector<uint8_t> Serialize() const;
  Status Restore(const std::vector<uint8_t>& image);

 private:
  // One lock-striped slice of the per-address entry map.
  struct Shard {
    mutable std::mutex mutex;
    std::map<PmOffset, CheckpointEntry> entries;
    // seq -> entry address (lookup accelerator; validated against the
    // entry's retained versions at query time since reverts discard
    // versions). This shard's slice of the global sequence order.
    std::map<SeqNum, PmOffset> seq_index;
  };
  static constexpr size_t kNumShards = 16;

  static size_t ShardOf(PmOffset address);
  Shard& ShardFor(PmOffset address) { return shards_[ShardOf(address)]; }
  const Shard& ShardFor(PmOffset address) const {
    return shards_[ShardOf(address)];
  }

  // Requires `shard.mutex`.
  CheckpointEntry& GetOrCreateLocked(Shard& shard, PmOffset address,
                                     size_t size);
  // State of the entry's extent after its first `upto` retained versions,
  // respecting the address's allocation epoch.
  std::vector<uint8_t> ReconstructState(const CheckpointEntry& entry,
                                        size_t upto) const;
  // Restore that steps around current allocator metadata in the range.
  void RestoreBytes(PmOffset address, const uint8_t* data, size_t size);
  void RaiseMaxExtent(size_t extent);

  PmemPool* pool_;  // null after Detach()
  PmemDevice* device_;
  CheckpointConfig config_;
  std::array<Shard, kNumShards> shards_;
  // Guards the transaction and allocation maps (taken after a shard mutex,
  // never before one).
  mutable std::mutex aux_mutex_;
  std::map<SeqNum, uint64_t> seq_to_tx_;
  std::map<uint64_t, std::vector<SeqNum>> tx_to_seqs_;
  std::map<PmOffset, AllocationRecord> allocations_;
  std::atomic<SeqNum> next_seq_{1};
  std::atomic<uint64_t> entry_count_{0};
  // Currently retained versions across all entries (mirrored to the
  // `checkpoint.versions.retained` gauge).
  std::atomic<uint64_t> retained_versions_{0};
  // Largest extent any entry ever reached (bounds the Overlapping scan).
  std::atomic<size_t> max_extent_{0};
  CheckpointStats stats_;
};

}  // namespace arthas

#endif  // ARTHAS_CHECKPOINT_CHECKPOINT_LOG_H_
