// PM-aware fine-grained checkpointing with versioning (paper Section 4.2).
//
// Unlike CRIU/Flashback-style coarse snapshots, the Arthas checkpoint log
// versions PM state *per program variable/address*, eagerly at each
// persistence point. The log entry mirrors the paper's Figure 5: the PM
// address, a ring of up to MAX_VERSIONS data versions with per-version sizes
// and logical sequence numbers, and old_entry/new_entry links created by
// reallocation.
//
// Both the granularity and timing follow the target program: the log
// subscribes to the pool's durability events, so an entry is created exactly
// for the byte range the program chose to persist, exactly when the persist
// (or transaction commit) succeeds. Updates that never reach a durability
// point are never checkpointed — they would not survive a crash anyway.
//
// In the paper the log lives in a dedicated PM region. Here it lives in the
// Arthas runtime (outside the simulated pool), which models the same thing:
// it survives target-system crashes because the reactor's process is not the
// target's process.
//
// Hot-path data layout (see DESIGN.md "Hot path"): each shard indexes its
// entries with an open-addressing flat hash table (bucket array of slot
// indices probing linearly, entries in an append-only deque so pointers stay
// stable across rehash), and copies version payloads into a per-shard
// size-classed arena instead of per-version heap vectors. One OnPersist is a
// hash probe plus two arena copies — no tree rebalancing and, in steady
// state, no allocator calls.
//
// Concurrency model (see DESIGN.md "Concurrency model"):
//   * The per-address entry index is sharded by offset hash with a lock per
//     shard, so OnPersist callbacks from concurrent flushers never contend
//     on one index. Sequence numbers come from one atomic counter (a global
//     total order; 1,2,3,... single-threaded) allocated under the shard
//     lock, so each shard's seq->address slice is append-ordered: the index
//     is a sorted vector, not a map.
//   * Observer callbacks (OnPersist/OnAlloc/...) are thread-safe. Lock
//     order: device stripes -> entry shard -> aux mutex (allocation and
//     transaction maps).
//   * Transaction attribution is per-thread: begin/persist/commit of one
//     transaction run on the thread executing it. seq->tx pairs are staged
//     in a thread-local buffer (no lock on the persist path) and published
//     into the global maps when the owning thread commits; queries that need
//     the maps (SeqsInSameTx, Serialize) drain every thread's buffer first,
//     which is safe because they are caller-serialized (quiesced).
//   * The reversion primitives (RevertSeq/RollbackToSeq/RevertLatestAt) and
//     Serialize/Restore are caller-serialized: the reactor quiesces worker
//     threads before reverting, as a real recovery process owns the pool
//     exclusively. They touch the device's raw-restore path, which must not
//     run under shard locks (it takes device stripes).
//   * Find/Overlapping return pointers into the log; entries are never
//     erased (only Restore replaces them), so the pointers stay valid, but
//     reading them races with concurrent flushers — reactor-side use only.
//   * PayloadRef views (CheckpointVersion::data/pre) borrow arena storage:
//     a view stays valid until its version is evicted from the ring or
//     discarded by a reversion (the span is then recycled). Snapshots from
//     entries() share the views; read them before mutating the log.

#ifndef ARTHAS_CHECKPOINT_CHECKPOINT_LOG_H_
#define ARTHAS_CHECKPOINT_CHECKPOINT_LOG_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.h"
#include "pmem/pool.h"

namespace arthas {

// A logical timestamp ordering all checkpointed PM updates.
using SeqNum = uint64_t;
constexpr SeqNum kNoSeq = 0;

struct CheckpointConfig {
  // Maximum retained versions per entry (paper default: 3).
  int max_versions = 3;
};

// Read-only view of a version payload stored in a checkpoint arena. Same
// read surface as the const side of std::vector<uint8_t> (data/size/
// begin/end/operator[]), so existing consumers compile unchanged. Validity
// follows the version that owns it (see the concurrency notes above).
class PayloadRef {
 public:
  PayloadRef() = default;
  PayloadRef(const uint8_t* data, size_t size)
      : data_(data), size_(static_cast<uint32_t>(size)) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const uint8_t* begin() const { return data_; }
  const uint8_t* end() const { return data_ + size_; }
  uint8_t operator[](size_t i) const { return data_[i]; }

 private:
  const uint8_t* data_ = nullptr;
  uint32_t size_ = 0;
};

// Bump-pointer arena with power-of-two size-class recycling, one per
// checkpoint shard. Payload copies on the persist path come from here: a
// fresh span is carved off the current chunk (or popped from a free list
// once versions start getting evicted), so steady-state checkpointing does
// no general-purpose heap allocation per persist. Spans released back keep
// their class and are reused verbatim; spans larger than the chunk size get
// a dedicated chunk and are not recycled (reclaimed only by Clear).
// Externally synchronized (the owning shard's mutex, or caller-serialized).
// Byte accounting (the capacity plane, obs/resource): every chunk
// allocation, span hand-out, and span recycle is mirrored — delta-exact —
// into the process-wide ResourceAccountant cells "checkpoint.arena.bytes"
// (chunk footprint), "checkpoint.arena.live.bytes" (spans held by
// versions) and "checkpoint.arena.freelist.bytes" (spans awaiting reuse),
// and unwound by Clear()/the destructor, so a Store/Release round-trip
// returns the cells to their starting values (tests/resource_test.cc).
// Method bodies live in checkpoint_log.cc so the instrumentation follows
// the per-TU ARTHAS_OBS_DISABLED discipline without ODR hazards.
class PayloadArena {
 public:
  PayloadArena() = default;
  ~PayloadArena();  // unwinds the accountant like Clear()

  PayloadArena(const PayloadArena&) = delete;
  PayloadArena& operator=(const PayloadArena&) = delete;

  // Copies [src, src+size) into the arena and returns a view of the copy.
  PayloadRef Store(const uint8_t* src, size_t size);

  // Recycles a span previously returned by Store on this arena. The bytes
  // may be overwritten by any later Store.
  void Release(PayloadRef ref);

  // Drops every chunk; all outstanding PayloadRefs become invalid.
  void Clear();

  size_t allocated_bytes() const { return allocated_bytes_; }
  // Bytes handed out by Store and not yet Released. Large spans
  // (> kMaxSmall) stay live until Clear, mirroring their lifetime.
  size_t live_bytes() const { return live_bytes_; }
  // Bytes parked on the size-class free lists, ready for reuse.
  size_t freelist_bytes() const { return freelist_bytes_; }

  // Mirrors chunk-allocation deltas into an owner-provided atomic so the
  // owning CheckpointLog can publish a whole-log arena-bytes gauge
  // without walking 16 shard mutexes. Pass nullptr to detach.
  void BindChunkCounter(std::atomic<uint64_t>* counter) {
    chunk_counter_ = counter;
  }

 private:
  static constexpr size_t kChunkBytes = 64 * 1024;
  static constexpr size_t kMinClass = 16;
  static constexpr size_t kMaxSmall = kChunkBytes;
  // Classes 16, 32, ..., 65536.
  static constexpr size_t kNumClasses = 13;

  static size_t ClassOf(size_t size) {
    size_t cls = 0;
    size_t cap = kMinClass;
    while (cap < size) {
      cap <<= 1;
      cls++;
    }
    return cls;
  }
  // The span footprint Store(size) actually occupies (its class's bytes;
  // exact size for large spans).
  static size_t SpanBytes(size_t size) {
    return size > kMaxSmall ? size : kMinClass << ClassOf(size);
  }

  uint8_t* Alloc(size_t size);
  void AddChunkBytes(size_t bytes);

  std::vector<std::unique_ptr<uint8_t[]>> chunks_;
  uint8_t* cursor_ = nullptr;  // bump pointer into chunks_.back()
  size_t remaining_ = 0;
  size_t allocated_bytes_ = 0;
  size_t live_bytes_ = 0;
  size_t freelist_bytes_ = 0;
  std::atomic<uint64_t>* chunk_counter_ = nullptr;
  std::array<std::vector<uint8_t*>, kNumClasses> free_;
};

// One retained version of a PM address range. Payloads are views into the
// owning shard's arena (valid until this version is evicted or reverted).
struct CheckpointVersion {
  SeqNum seq_num = kNoSeq;
  uint64_t tx_id = 0;  // 0 when the update was outside any transaction
  PayloadRef data;
  // Durable bytes of the same range captured immediately before this
  // persist: the authoritative undo data for this version. Covers writes
  // that bypassed checkpointing (allocator metadata carved inside a
  // previously-persisted range, address reuse after free, external
  // corruption), which the version chain alone cannot reconstruct.
  PayloadRef pre;
};

// Per-address log entry (paper Figure 5).
struct CheckpointEntry {
  PmOffset address = kNullPmOffset;
  // Bytes that were durable at this address before the first retained
  // version (version "-1"); reverting the oldest version restores these.
  std::vector<uint8_t> original;
  // Oldest-first ring of retained versions (newest at the back).
  std::vector<CheckpointVersion> versions;
  // Realloc linkage.
  PmOffset old_entry = kNullPmOffset;
  PmOffset new_entry = kNullPmOffset;
};

// Fields are atomics so the harness can read them while flushers record.
struct CheckpointStats {
  std::atomic<uint64_t> records{0};  // persists checkpointed
  std::atomic<uint64_t> bytes_copied{0};
  std::atomic<uint64_t> reverted_updates{0};  // versions undone by reversion
};

// Tracks object lifetimes for the leak-mitigation workflow (Section 4.7).
struct AllocationRecord {
  PmOffset offset = kNullPmOffset;
  size_t size = 0;
  SeqNum alloc_seq = kNoSeq;
  bool freed = false;
};

class CheckpointLog : public DurabilityObserver, public PoolObserver {
 public:
  // Attaches to the pool's device and pool observers. Detaches in the
  // destructor.
  CheckpointLog(PmemPool& pool, CheckpointConfig config = {});
  ~CheckpointLog() override;

  CheckpointLog(const CheckpointLog&) = delete;
  CheckpointLog& operator=(const CheckpointLog&) = delete;

  // --- Observer hooks (called by the pmem layer) ---------------------------
  void OnPersist(PmOffset offset, size_t size, const void* data) override;
  void OnAlloc(PmOffset offset, size_t size) override;
  void OnFree(PmOffset offset, size_t size) override;
  void OnRealloc(PmOffset old_offset, size_t old_size, PmOffset new_offset,
                 size_t new_size) override;
  void OnTxBegin(uint64_t tx_id) override;
  void OnTxCommit(uint64_t tx_id) override;

  // --- Queries (used by the reactor) ---------------------------------------

  // Snapshot of all entries, merged across shards into address order. The
  // copies share PayloadRef views with the log — read them before mutating
  // it. Prefer ForEachEntry in loops: this materializes a full map.
  std::map<PmOffset, CheckpointEntry> entries() const;

  // Visits every entry without materializing a merged copy. Iteration is
  // shard-grouped (insertion order within a shard, not address order); each
  // shard's lock is held while its slice is visited, so the callback must
  // not call back into the log.
  void ForEachEntry(
      const std::function<void(const CheckpointEntry&)>& fn) const;

  // Number of distinct addresses with a log entry.
  size_t entry_count() const { return entry_count_.load(); }

  // Capacity accounting, maintained under the shard mutexes and readable
  // lock-free (the OnPersist gauges and bench_soak read these):
  // heap bytes held by the shard payload arenas (chunk footprint), ...
  uint64_t arena_bytes() const { return arena_bytes_.load(); }
  // ... heap bytes held by the per-shard indexes (entry slots, pre-history
  // originals, hash buckets, seq index), ...
  uint64_t index_bytes() const { return index_bytes_.load(); }
  // ... and versions currently retained across all entries.
  uint64_t retained_versions() const { return retained_versions_.load(); }

  // Entry at exactly `address`, or nullptr.
  const CheckpointEntry* Find(PmOffset address) const;

  // Entries whose recorded range overlaps [offset, offset+size).
  std::vector<const CheckpointEntry*> Overlapping(PmOffset offset,
                                                  size_t size) const;

  // The (entry address, version index) holding sequence number `seq`.
  std::optional<std::pair<PmOffset, int>> LocateSeq(SeqNum seq) const;

  // Sequence numbers recorded within the same transaction as `seq`
  // (including `seq` itself); just {seq} if it was not transactional.
  // Caller-serialized (drains the per-thread attribution buffers).
  std::vector<SeqNum> SeqsInSameTx(SeqNum seq) const;

  // Largest sequence number issued so far.
  SeqNum LatestSeq() const { return next_seq_.load() - 1; }

  // --- Reversion primitives (used by the reactor) ---------------------------
  //
  // Caller-serialized: quiesce concurrent flushers first (the reactor's
  // recovery process owns the pool exclusively).

  // Undoes the update with sequence number `seq`: restores the previous
  // version's bytes (or the original bytes) at the entry's address, in both
  // the live and durable images. Newer retained versions of the same entry
  // are discarded (they were built on the reverted value).
  //
  // Returns true when the *divergence rule* fired instead: the bytes at the
  // address no longer matched what this (newest) version persisted — the
  // state was corrupted outside program order (e.g. a written-back bit
  // flip) — and reverting restored the checkpointed good version itself.
  Result<bool> RevertSeq(SeqNum seq);

  // Time-ordered rollback: undoes *every* update with sequence number
  // >= `seq` (ArCkpt/rollback-mode building block). Returns the number of
  // updates discarded.
  Result<uint64_t> RollbackToSeq(SeqNum seq);

  // Sequence number of the newest retained version at `address`, or kNoSeq.
  SeqNum NewestSeqAt(PmOffset address) const;

  // Newest retained sequence number across all entries, or kNoSeq.
  SeqNum NewestRetainedSeq() const;

  // Reverts the newest retained version at `address` (the reactor's
  // "try an older version v-2 ..." step, paper Section 4.5).
  Status RevertLatestAt(PmOffset address);

  // --- Leak mitigation support ----------------------------------------------

  // All allocations never freed, oldest first.
  std::vector<AllocationRecord> UnfreedAllocations() const;

  // Sequence number at which the allocation currently covering `address`
  // was made (kNoSeq when unknown). Versions recorded before this epoch
  // belong to a *previous object* that lived at the same address; reverting
  // must not resurrect its bytes into the current object.
  SeqNum AllocationEpoch(PmOffset address) const;

  const CheckpointStats& stats() const { return stats_; }

  // Detach from the pool without destroying recorded state (used when the
  // overhead benchmarks want a vanilla run after an instrumented one).
  void Detach();

  // --- Log persistence ------------------------------------------------------
  //
  // In the paper the checkpoint log itself lives in a persistent region, so
  // a reactor restart does not lose the versioned history. These serialize
  // the log (entries, versions with undo bytes, tx groups, allocation
  // records) to a byte buffer and restore it into a freshly attached log.
  // Caller-serialized.
  std::vector<uint8_t> Serialize() const;
  Status Restore(const std::vector<uint8_t>& image);

 private:
  // One lock-striped slice of the per-address entry index.
  struct Shard {
    mutable std::mutex mutex;
    // Open-addressing index: each bucket holds (slot index + 1), 0 = empty.
    // Power-of-two size, linear probing; entries are never individually
    // erased, so no tombstones. Rebuilt in place when load passes 3/4.
    std::vector<uint32_t> buckets;
    // Append-only entry storage. A deque keeps entry addresses stable, so
    // Find/Overlapping pointers survive rehashes and new inserts.
    std::deque<CheckpointEntry> slots;
    // (seq, entry address) pairs in seq order — seqs are allocated under
    // the shard mutex, so plain append keeps this sorted and LocateSeq is
    // a binary search. Validated against the entry's retained versions at
    // query time since reverts discard versions. This shard's slice of the
    // global sequence order.
    std::vector<std::pair<SeqNum, PmOffset>> seq_index;
    // Version payload storage (CheckpointVersion::data/pre spans).
    PayloadArena arena;
  };
  static constexpr size_t kNumShards = 16;

  // Staged seq->tx pairs of one thread, appended without a lock on the
  // persist path and published under aux_mutex_ at commit/query time.
  struct TxBuffer {
    std::vector<std::pair<SeqNum, uint64_t>> pairs;
  };

  static size_t ShardOf(PmOffset address);
  Shard& ShardFor(PmOffset address) { return shards_[ShardOf(address)]; }
  const Shard& ShardFor(PmOffset address) const {
    return shards_[ShardOf(address)];
  }

  // Flat-hash helpers. All require `shard.mutex` (or caller-serialization).
  static CheckpointEntry* FindSlot(Shard& shard, PmOffset address);
  static const CheckpointEntry* FindSlot(const Shard& shard,
                                         PmOffset address);
  static void InsertBucket(Shard& shard, PmOffset address, uint32_t slot);
  // Non-static: rehashes account their bucket-array growth on this log.
  void RehashLocked(Shard& shard);
  CheckpointEntry& GetOrCreateLocked(Shard& shard, PmOffset address,
                                     size_t size);

  // This thread's staging buffer for this log (registered on first use).
  TxBuffer& LocalTxBuffer() const;
  // Moves every thread's staged pairs into seq_to_tx_/tx_to_seqs_.
  // Requires aux_mutex_; races with nothing when caller-serialized.
  void PublishTxBuffersLocked() const;

  // State of the entry's extent after its first `upto` retained versions,
  // respecting the address's allocation epoch.
  std::vector<uint8_t> ReconstructState(const CheckpointEntry& entry,
                                        size_t upto) const;
  // Restore that steps around current allocator metadata in the range.
  void RestoreBytes(PmOffset address, const uint8_t* data, size_t size);
  void RaiseMaxExtent(size_t extent);
  // Index-footprint growth (entries never shrink outside destruction):
  // bumps index_bytes_ and the "checkpoint.index.bytes" accountant cell.
  void AddIndexBytes(size_t bytes);

  PmemPool* pool_;  // null after Detach()
  PmemDevice* device_;
  CheckpointConfig config_;
  // Process-unique id keying the thread-local buffer registry (never
  // reused, so a stale TLS entry can never alias a new log).
  const uint64_t log_id_;
  std::array<Shard, kNumShards> shards_;
  // Guards the transaction and allocation maps (taken after a shard mutex,
  // never before one). The tx maps are lazily-published caches, so they are
  // mutable: const queries drain the staging buffers into them.
  mutable std::mutex aux_mutex_;
  mutable std::map<SeqNum, uint64_t> seq_to_tx_;
  mutable std::map<uint64_t, std::vector<SeqNum>> tx_to_seqs_;
  mutable std::vector<std::unique_ptr<TxBuffer>> tx_buffers_;
  std::map<PmOffset, AllocationRecord> allocations_;
  std::atomic<SeqNum> next_seq_{1};
  std::atomic<uint64_t> entry_count_{0};
  // Currently retained versions across all entries (mirrored to the
  // `checkpoint.versions.retained` gauge).
  std::atomic<uint64_t> retained_versions_{0};
  // Shard arena chunk bytes (every shard arena is bound to this counter)
  // and index bytes (AddIndexBytes), for the capacity gauges.
  std::atomic<uint64_t> arena_bytes_{0};
  std::atomic<uint64_t> index_bytes_{0};
  // Largest extent any entry ever reached (bounds the Overlapping scan).
  std::atomic<size_t> max_extent_{0};
  CheckpointStats stats_;
};

}  // namespace arthas

#endif  // ARTHAS_CHECKPOINT_CHECKPOINT_LOG_H_
