#include "pmem/device.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "obs/reqtrace.h"

namespace arthas {

PmemDevice::PmemDevice(size_t size) : live_(size, 0), durable_(size, 0) {
  static std::atomic<uint32_t> next_device_id{1};
  device_id_ = next_device_id.fetch_add(1, std::memory_order_relaxed);
  const size_t lines = (size + kCacheLineSize - 1) / kCacheLineSize;
  num_pending_words_ = (lines + 63) / 64;
  // Value-initialization zeroes every word (std::atomic's default
  // constructor does not, pre-C++20).
  pending_words_.reset(new std::atomic<uint64_t>[num_pending_words_]());
}

// Stripe selection: cache-line index modulo kNumStripes. A range of L lines
// therefore touches min(L, kNumStripes) stripes; kNumStripes is 64 so the
// held set fits a uint64_t bitmask.
PmemDevice::StripeGuard::StripeGuard(const PmemDevice& device, PmOffset offset,
                                     size_t size)
    : device_(device) {
  static_assert(PmemDevice::kNumStripes <= 64, "stripe mask is a uint64_t");
  if (size == 0) {
    return;
  }
  ARTHAS_PROFILE(kLockWait);
  const uint64_t first_line = offset / kCacheLineSize;
  const uint64_t last_line = (offset + size - 1) / kCacheLineSize;
  if (last_line - first_line + 1 >= kNumStripes) {
    mask_ = ~0ULL;
  } else {
    for (uint64_t line = first_line; line <= last_line; line++) {
      mask_ |= 1ULL << (line % kNumStripes);
    }
  }
  for (size_t i = 0; i < kNumStripes; i++) {
    if (mask_ & (1ULL << i)) {
      device_.stripes_[i].lock();
    }
  }
}

PmemDevice::StripeGuard::~StripeGuard() {
  for (size_t i = kNumStripes; i-- > 0;) {
    if (mask_ & (1ULL << i)) {
      device_.stripes_[i].unlock();
    }
  }
}

PmOffset PmemDevice::OffsetOf(const void* p) const {
  const auto* byte = static_cast<const uint8_t*>(p);
  if (byte < live_.data() || byte >= live_.data() + live_.size()) {
    return kNullPmOffset;
  }
  return static_cast<PmOffset>(byte - live_.data());
}

void PmemDevice::MakeDurable(PmOffset offset, size_t size) {
  assert(offset + size <= live_.size());
  // Round out to cache-line granularity, as clwb does.
  const PmOffset line_start = offset & ~(kCacheLineSize - 1);
  PmOffset line_end = (offset + size + kCacheLineSize - 1) &
                      ~(static_cast<PmOffset>(kCacheLineSize) - 1);
  line_end = std::min<PmOffset>(line_end, live_.size());
  {
    ARTHAS_PROFILE(kFlush);
    std::memcpy(durable_.data() + line_start, live_.data() + line_start,
                line_end - line_start);
    stats_.flushed_lines += (line_end - line_start) / kCacheLineSize;
    stats_.persisted_bytes += size;
  }
  ARTHAS_PROFILE(kObsHook);
  // `media.bytes` counts whole flushed lines (what actually hits media),
  // while `persist.bytes` counts what the program asked for — the gap is
  // the write amplification of cache-line rounding.
  ARTHAS_COUNTER_ADD("pmem.flush.count", (line_end - line_start) / kCacheLineSize);
  ARTHAS_COUNTER_ADD("pmem.media.bytes", line_end - line_start);
  ARTHAS_COUNTER_ADD("pmem.persist.bytes", size);
}

void PmemDevice::NotifyAndMakeDurable(PmOffset offset, size_t size) {
  // Observers run at the durability point but before the media copy, so a
  // checkpointing observer can still read the previous durable contents
  // (needed to seed the oldest version of a fresh checkpoint entry). The
  // range's stripes are held, keeping that pre-copy view stable.
  for (DurabilityObserver* obs : observers_) {
    obs->OnPersist(offset, size, live_.data() + offset);
  }
  MakeDurable(offset, size);
  stats_.persists++;
}

namespace {
// Innermost BatchScope of the calling thread; scopes chain through their
// parent_ pointer, so one thread can hold scopes on several devices.
thread_local PmemDevice::BatchScope* tls_batch_top = nullptr;
}  // namespace

PmemDevice::BatchScope::BatchScope(PmemDevice& device)
    : device_(device), parent_(tls_batch_top) {
  tls_batch_top = this;
}

PmemDevice::BatchScope::~BatchScope() {
  tls_batch_top = parent_;
  // Drain only when this was the thread's outermost scope for the device:
  // nested scopes collapse into one fence at the true batch boundary.
  if (!device_.InThreadBatch()) {
    device_.Drain();
  }
}

bool PmemDevice::InThreadBatch() const {
  for (const BatchScope* scope = tls_batch_top; scope != nullptr;
       scope = scope->parent_) {
    if (&scope->device_ == this) {
      return true;
    }
  }
  return false;
}

void PmemDevice::Persist(PmOffset offset, size_t size) {
  if (size == 0) {
    return;
  }
  if (InThreadBatch()) {
    // Deferred-drain batch: stage the lines (clwb) and let the enclosing
    // BatchScope issue the one sfence. Flush accounting happens here; the
    // drain accounts the coalesced runs as persists when they actually
    // become durable.
    FlushLines(offset, size);
    return;
  }
  StripeGuard guard(*this, offset, size);
  NotifyAndMakeDurable(offset, size);
  ARTHAS_PROFILE(kObsHook);
  ARTHAS_COUNTER_ADD("pmem.persist.count", 1);
  ARTHAS_FLIGHT_RECORD(obs::FrType::kPersist, device_id_, offset, size, 0);
}

void PmemDevice::PersistQuiet(PmOffset offset, size_t size) {
  if (size == 0) {
    return;
  }
  StripeGuard guard(*this, offset, size);
  MakeDurable(offset, size);
  stats_.persists++;
  ARTHAS_PROFILE(kObsHook);
  ARTHAS_COUNTER_ADD("pmem.persist.count", 1);
  ARTHAS_FLIGHT_RECORD(obs::FrType::kPersistQuiet, device_id_, offset, size,
                       0);
}

void PmemDevice::FlushLines(PmOffset offset, size_t size) {
  if (size == 0) {
    return;
  }
  ARTHAS_PROFILE(kFlush);
  ARTHAS_REQTRACE_STAGE(obs::ReqStage::kFlush);
  const uint64_t first_line = offset / kCacheLineSize;
  const uint64_t last_line = (offset + size - 1) / kCacheLineSize;
  // The release order pairs with Drain's acquire exchange: a drainer that
  // observes a staged bit also observes the live-image stores the flusher
  // made before staging it.
  for (uint64_t line = first_line; line <= last_line;) {
    const uint64_t word = line / 64;
    uint64_t mask = 0;
    const uint64_t word_end = std::min<uint64_t>((word + 1) * 64,
                                                 last_line + 1);
    for (; line < word_end; line++) {
      mask |= 1ULL << (line % 64);
    }
    pending_words_[word].fetch_or(mask, std::memory_order_release);
  }
  // Widen the scan window. Both watermarks only ever move outward between
  // quiesce points, so a concurrent Drain that misses this update by a hair
  // leaves the staged bits for the next drain — the same fate a clwb issued
  // concurrently with another thread's sfence has.
  const uint64_t lo_word = first_line / 64;
  const uint64_t hi_word = last_line / 64;
  uint64_t lo = pending_lo_.load(std::memory_order_relaxed);
  while (lo_word < lo && !pending_lo_.compare_exchange_weak(
                             lo, lo_word, std::memory_order_release)) {
  }
  uint64_t hi = pending_hi_.load(std::memory_order_relaxed);
  while (hi_word > hi && !pending_hi_.compare_exchange_weak(
                             hi, hi_word, std::memory_order_release)) {
  }
  {
    ARTHAS_PROFILE(kObsHook);
    ARTHAS_FLIGHT_RECORD(obs::FrType::kFlush, device_id_, offset, size, 0);
  }
}

void PmemDevice::Drain() {
  ARTHAS_PROFILE(kDrain);
  ARTHAS_REQTRACE_STAGE(obs::ReqStage::kDrain);
  stats_.drains++;
  ARTHAS_COUNTER_ADD("pmem.drain.count", 1);
  // Claim each staged word with an atomic exchange (never holding a lock),
  // then make each contiguous run of claimed lines durable under its
  // stripes. A concurrent FlushLines after the exchange lands in the next
  // drain, exactly as a clwb issued after this thread's sfence would.
  const uint64_t lo = pending_lo_.load(std::memory_order_acquire);
  const uint64_t hi = pending_hi_.load(std::memory_order_acquire);
  if (lo > hi) {
    return;  // nothing staged since the last quiesce
  }
  for (uint64_t w = lo; w <= hi && w < num_pending_words_; w++) {
    if (pending_words_[w].load(std::memory_order_relaxed) == 0) {
      continue;
    }
    uint64_t bits = pending_words_[w].exchange(0, std::memory_order_acquire);
    while (bits != 0) {
      const int first = __builtin_ctzll(bits);
      int last = first;
      while (last + 1 < 64 && (bits & (1ULL << (last + 1)))) {
        last++;
      }
      const uint64_t run_mask =
          (last == 63 ? ~0ULL : ((1ULL << (last + 1)) - 1)) &
          ~((1ULL << first) - 1);
      bits &= ~run_mask;
      const PmOffset run_offset =
          (w * 64 + static_cast<uint64_t>(first)) * kCacheLineSize;
      if (run_offset >= live_.size()) {
        break;
      }
      const size_t run_size =
          std::min<size_t>(static_cast<size_t>(last - first + 1) *
                               kCacheLineSize,
                           live_.size() - run_offset);
      StripeGuard guard(*this, run_offset, run_size);
      NotifyAndMakeDurable(run_offset, run_size);
    }
  }
  {
    ARTHAS_PROFILE(kObsHook);
    ARTHAS_FLIGHT_RECORD(obs::FrType::kDrain, device_id_, 0, 0,
                         hi >= lo ? hi - lo + 1 : 0);
  }
}

void PmemDevice::ClearPending() {
  for (size_t w = 0; w < num_pending_words_; w++) {
    pending_words_[w].store(0, std::memory_order_relaxed);
  }
  pending_lo_.store(~0ULL, std::memory_order_relaxed);
  pending_hi_.store(0, std::memory_order_relaxed);
}

void PmemDevice::Crash() {
  // Take every stripe so the unflushed-line set is consistent: concurrent
  // persists are either fully durable or fully discarded.
  StripeGuard guard(*this, 0, live_.size());
#ifndef ARTHAS_OBS_DISABLED
  // Count the cache lines whose writes never reached the durable image —
  // the data a real power failure would discard — and leave one flight
  // record per lost line so post-crash forensics can name it. The pending
  // bitmap (still intact here) distinguishes a line that was staged by a
  // clwb but never fenced (missing drain) from one no flush ever covered.
  // The scan is obs-only work and compiles out with the instrumentation.
  uint64_t discarded_lines = 0;
  for (size_t off = 0; off < live_.size(); off += kCacheLineSize) {
    const size_t n = std::min(kCacheLineSize, live_.size() - off);
    if (std::memcmp(live_.data() + off, durable_.data() + off, n) != 0) {
      discarded_lines++;
      const uint64_t line = off / kCacheLineSize;
      const bool staged =
          (pending_words_[line / 64].load(std::memory_order_relaxed) &
           (1ULL << (line % 64))) != 0;
      ARTHAS_FLIGHT_RECORD(obs::FrType::kLineLost, device_id_, off,
                           kCacheLineSize, 0,
                           staged ? obs::FrReason::kFlushedNotDrained
                                  : obs::FrReason::kNeverFlushed);
    }
  }
  ARTHAS_COUNTER_ADD("pmem.crash.count", 1);
  ARTHAS_COUNTER_ADD("pmem.crash_discarded.lines", discarded_lines);
  ARTHAS_FLIGHT_RECORD(obs::FrType::kCrash, device_id_, 0, 0,
                       discarded_lines);
#endif
  ClearPending();
  std::memcpy(live_.data(), durable_.data(), live_.size());
  stats_.crashes++;
}

void PmemDevice::RawRestore(PmOffset offset, const void* data, size_t size) {
  assert(offset + size <= live_.size());
  StripeGuard guard(*this, offset, size);
  std::memcpy(live_.data() + offset, data, size);
  std::memcpy(durable_.data() + offset, data, size);
}

std::vector<uint8_t> PmemDevice::SnapshotDurable() const {
  StripeGuard guard(*this, 0, durable_.size());
  return durable_;
}

Status PmemDevice::RestoreDurable(const std::vector<uint8_t>& image) {
  if (image.size() != durable_.size()) {
    return InvalidArgument("snapshot image size mismatch");
  }
  StripeGuard guard(*this, 0, durable_.size());
  durable_ = image;
  std::memcpy(live_.data(), durable_.data(), live_.size());
  ClearPending();
  ARTHAS_FLIGHT_RECORD(obs::FrType::kRestore, device_id_, 0, image.size(), 0);
  return OkStatus();
}

Status PmemDevice::SaveToFile(const std::string& path) const {
  StripeGuard guard(*this, 0, durable_.size());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Internal("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(durable_.data(), 1, durable_.size(), f);
  std::fclose(f);
  if (written != durable_.size()) {
    return Internal("short write to " + path);
  }
  return OkStatus();
}

Status PmemDevice::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFound("cannot open " + path);
  }
  StripeGuard guard(*this, 0, durable_.size());
  const size_t read = std::fread(durable_.data(), 1, durable_.size(), f);
  std::fclose(f);
  if (read != durable_.size()) {
    return Corruption("short read from " + path);
  }
  std::memcpy(live_.data(), durable_.data(), live_.size());
  return OkStatus();
}

void PmemDevice::AddObserver(DurabilityObserver* observer) {
  observers_.push_back(observer);
}

void PmemDevice::RemoveObserver(DurabilityObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

bool PmemDevice::IsDurable(PmOffset offset, size_t size) const {
  assert(offset + size <= live_.size());
  // Lock-free by design (see header): the caller guarantees no concurrent
  // persist/drain of this range, so both images are stable for the compare.
  return std::memcmp(live_.data() + offset, durable_.data() + offset, size) ==
         0;
}

}  // namespace arthas
