#include "pmem/device.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "obs/obs.h"

namespace arthas {

PmemDevice::PmemDevice(size_t size) : live_(size, 0), durable_(size, 0) {}

PmOffset PmemDevice::OffsetOf(const void* p) const {
  const auto* byte = static_cast<const uint8_t*>(p);
  if (byte < live_.data() || byte >= live_.data() + live_.size()) {
    return kNullPmOffset;
  }
  return static_cast<PmOffset>(byte - live_.data());
}

void PmemDevice::MakeDurable(PmOffset offset, size_t size) {
  assert(offset + size <= live_.size());
  // Round out to cache-line granularity, as clwb does.
  const PmOffset line_start = offset & ~(kCacheLineSize - 1);
  PmOffset line_end = (offset + size + kCacheLineSize - 1) &
                      ~(static_cast<PmOffset>(kCacheLineSize) - 1);
  line_end = std::min<PmOffset>(line_end, live_.size());
  std::memcpy(durable_.data() + line_start, live_.data() + line_start,
              line_end - line_start);
  stats_.flushed_lines += (line_end - line_start) / kCacheLineSize;
  stats_.persisted_bytes += size;
  // `media.bytes` counts whole flushed lines (what actually hits media),
  // while `persist.bytes` counts what the program asked for — the gap is
  // the write amplification of cache-line rounding.
  ARTHAS_COUNTER_ADD("pmem.flush.count", (line_end - line_start) / kCacheLineSize);
  ARTHAS_COUNTER_ADD("pmem.media.bytes", line_end - line_start);
  ARTHAS_COUNTER_ADD("pmem.persist.bytes", size);
}

void PmemDevice::Persist(PmOffset offset, size_t size) {
  if (size == 0) {
    return;
  }
  // Observers run at the durability point but before the media copy, so a
  // checkpointing observer can still read the previous durable contents
  // (needed to seed the oldest version of a fresh checkpoint entry).
  for (DurabilityObserver* obs : observers_) {
    obs->OnPersist(offset, size, live_.data() + offset);
  }
  MakeDurable(offset, size);
  stats_.persists++;
  ARTHAS_COUNTER_ADD("pmem.persist.count", 1);
}

void PmemDevice::PersistQuiet(PmOffset offset, size_t size) {
  if (size == 0) {
    return;
  }
  MakeDurable(offset, size);
  stats_.persists++;
  ARTHAS_COUNTER_ADD("pmem.persist.count", 1);
}

void PmemDevice::FlushLines(PmOffset offset, size_t size) {
  if (size == 0) {
    return;
  }
  pending_.push_back({offset, size});
}

void PmemDevice::Drain() {
  stats_.drains++;
  ARTHAS_COUNTER_ADD("pmem.drain.count", 1);
  for (const PendingRange& range : pending_) {
    for (DurabilityObserver* obs : observers_) {
      obs->OnPersist(range.offset, range.size, live_.data() + range.offset);
    }
    MakeDurable(range.offset, range.size);
    stats_.persists++;
  }
  pending_.clear();
}

void PmemDevice::Crash() {
#ifndef ARTHAS_OBS_DISABLED
  // Count the cache lines whose writes never reached the durable image —
  // the data a real power failure would discard. The scan is obs-only work
  // and compiles out with the rest of the instrumentation.
  uint64_t discarded_lines = 0;
  for (size_t off = 0; off < live_.size(); off += kCacheLineSize) {
    const size_t n = std::min(kCacheLineSize, live_.size() - off);
    if (std::memcmp(live_.data() + off, durable_.data() + off, n) != 0) {
      discarded_lines++;
    }
  }
  ARTHAS_COUNTER_ADD("pmem.crash.count", 1);
  ARTHAS_COUNTER_ADD("pmem.crash_discarded.lines", discarded_lines);
#endif
  pending_.clear();
  std::memcpy(live_.data(), durable_.data(), live_.size());
  stats_.crashes++;
}

void PmemDevice::RawRestore(PmOffset offset, const void* data, size_t size) {
  assert(offset + size <= live_.size());
  std::memcpy(live_.data() + offset, data, size);
  std::memcpy(durable_.data() + offset, data, size);
}

Status PmemDevice::RestoreDurable(const std::vector<uint8_t>& image) {
  if (image.size() != durable_.size()) {
    return InvalidArgument("snapshot image size mismatch");
  }
  durable_ = image;
  std::memcpy(live_.data(), durable_.data(), live_.size());
  pending_.clear();
  return OkStatus();
}

Status PmemDevice::SaveToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Internal("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(durable_.data(), 1, durable_.size(), f);
  std::fclose(f);
  if (written != durable_.size()) {
    return Internal("short write to " + path);
  }
  return OkStatus();
}

Status PmemDevice::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFound("cannot open " + path);
  }
  const size_t read = std::fread(durable_.data(), 1, durable_.size(), f);
  std::fclose(f);
  if (read != durable_.size()) {
    return Corruption("short read from " + path);
  }
  std::memcpy(live_.data(), durable_.data(), live_.size());
  return OkStatus();
}

void PmemDevice::AddObserver(DurabilityObserver* observer) {
  observers_.push_back(observer);
}

void PmemDevice::RemoveObserver(DurabilityObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

bool PmemDevice::IsDurable(PmOffset offset, size_t size) const {
  assert(offset + size <= live_.size());
  return std::memcmp(live_.data() + offset, durable_.data() + offset, size) ==
         0;
}

}  // namespace arthas
