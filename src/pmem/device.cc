#include "pmem/device.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "obs/obs.h"

namespace arthas {

PmemDevice::PmemDevice(size_t size) : live_(size, 0), durable_(size, 0) {}

// Stripe selection: cache-line index modulo kNumStripes. A range of L lines
// therefore touches min(L, kNumStripes) stripes; kNumStripes is 64 so the
// held set fits a uint64_t bitmask.
PmemDevice::StripeGuard::StripeGuard(const PmemDevice& device, PmOffset offset,
                                     size_t size)
    : device_(device) {
  static_assert(PmemDevice::kNumStripes <= 64, "stripe mask is a uint64_t");
  if (size == 0) {
    return;
  }
  const uint64_t first_line = offset / kCacheLineSize;
  const uint64_t last_line = (offset + size - 1) / kCacheLineSize;
  if (last_line - first_line + 1 >= kNumStripes) {
    mask_ = ~0ULL;
  } else {
    for (uint64_t line = first_line; line <= last_line; line++) {
      mask_ |= 1ULL << (line % kNumStripes);
    }
  }
  for (size_t i = 0; i < kNumStripes; i++) {
    if (mask_ & (1ULL << i)) {
      device_.stripes_[i].lock();
    }
  }
}

PmemDevice::StripeGuard::~StripeGuard() {
  for (size_t i = kNumStripes; i-- > 0;) {
    if (mask_ & (1ULL << i)) {
      device_.stripes_[i].unlock();
    }
  }
}

PmOffset PmemDevice::OffsetOf(const void* p) const {
  const auto* byte = static_cast<const uint8_t*>(p);
  if (byte < live_.data() || byte >= live_.data() + live_.size()) {
    return kNullPmOffset;
  }
  return static_cast<PmOffset>(byte - live_.data());
}

void PmemDevice::MakeDurable(PmOffset offset, size_t size) {
  assert(offset + size <= live_.size());
  // Round out to cache-line granularity, as clwb does.
  const PmOffset line_start = offset & ~(kCacheLineSize - 1);
  PmOffset line_end = (offset + size + kCacheLineSize - 1) &
                      ~(static_cast<PmOffset>(kCacheLineSize) - 1);
  line_end = std::min<PmOffset>(line_end, live_.size());
  std::memcpy(durable_.data() + line_start, live_.data() + line_start,
              line_end - line_start);
  stats_.flushed_lines += (line_end - line_start) / kCacheLineSize;
  stats_.persisted_bytes += size;
  // `media.bytes` counts whole flushed lines (what actually hits media),
  // while `persist.bytes` counts what the program asked for — the gap is
  // the write amplification of cache-line rounding.
  ARTHAS_COUNTER_ADD("pmem.flush.count", (line_end - line_start) / kCacheLineSize);
  ARTHAS_COUNTER_ADD("pmem.media.bytes", line_end - line_start);
  ARTHAS_COUNTER_ADD("pmem.persist.bytes", size);
}

void PmemDevice::NotifyAndMakeDurable(PmOffset offset, size_t size) {
  // Observers run at the durability point but before the media copy, so a
  // checkpointing observer can still read the previous durable contents
  // (needed to seed the oldest version of a fresh checkpoint entry). The
  // range's stripes are held, keeping that pre-copy view stable.
  for (DurabilityObserver* obs : observers_) {
    obs->OnPersist(offset, size, live_.data() + offset);
  }
  MakeDurable(offset, size);
  stats_.persists++;
}

void PmemDevice::Persist(PmOffset offset, size_t size) {
  if (size == 0) {
    return;
  }
  StripeGuard guard(*this, offset, size);
  NotifyAndMakeDurable(offset, size);
  ARTHAS_COUNTER_ADD("pmem.persist.count", 1);
}

void PmemDevice::PersistQuiet(PmOffset offset, size_t size) {
  if (size == 0) {
    return;
  }
  StripeGuard guard(*this, offset, size);
  MakeDurable(offset, size);
  stats_.persists++;
  ARTHAS_COUNTER_ADD("pmem.persist.count", 1);
}

void PmemDevice::FlushLines(PmOffset offset, size_t size) {
  if (size == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(pending_mutex_);
  pending_.push_back({offset, size});
}

void PmemDevice::Drain() {
  stats_.drains++;
  ARTHAS_COUNTER_ADD("pmem.drain.count", 1);
  // Swap the staged list out under its own mutex (never held while taking
  // stripes), then make each range durable under its stripes. A concurrent
  // FlushLines after the swap lands in the next drain, exactly as a clwb
  // issued after this thread's sfence would.
  std::vector<PendingRange> draining;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    draining.swap(pending_);
  }
  for (const PendingRange& range : draining) {
    StripeGuard guard(*this, range.offset, range.size);
    NotifyAndMakeDurable(range.offset, range.size);
  }
}

void PmemDevice::Crash() {
  // Take every stripe so the unflushed-line set is consistent: concurrent
  // persists are either fully durable or fully discarded.
  StripeGuard guard(*this, 0, live_.size());
#ifndef ARTHAS_OBS_DISABLED
  // Count the cache lines whose writes never reached the durable image —
  // the data a real power failure would discard. The scan is obs-only work
  // and compiles out with the rest of the instrumentation.
  uint64_t discarded_lines = 0;
  for (size_t off = 0; off < live_.size(); off += kCacheLineSize) {
    const size_t n = std::min(kCacheLineSize, live_.size() - off);
    if (std::memcmp(live_.data() + off, durable_.data() + off, n) != 0) {
      discarded_lines++;
    }
  }
  ARTHAS_COUNTER_ADD("pmem.crash.count", 1);
  ARTHAS_COUNTER_ADD("pmem.crash_discarded.lines", discarded_lines);
#endif
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.clear();
  }
  std::memcpy(live_.data(), durable_.data(), live_.size());
  stats_.crashes++;
}

void PmemDevice::RawRestore(PmOffset offset, const void* data, size_t size) {
  assert(offset + size <= live_.size());
  StripeGuard guard(*this, offset, size);
  std::memcpy(live_.data() + offset, data, size);
  std::memcpy(durable_.data() + offset, data, size);
}

std::vector<uint8_t> PmemDevice::SnapshotDurable() const {
  StripeGuard guard(*this, 0, durable_.size());
  return durable_;
}

Status PmemDevice::RestoreDurable(const std::vector<uint8_t>& image) {
  if (image.size() != durable_.size()) {
    return InvalidArgument("snapshot image size mismatch");
  }
  StripeGuard guard(*this, 0, durable_.size());
  durable_ = image;
  std::memcpy(live_.data(), durable_.data(), live_.size());
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.clear();
  }
  return OkStatus();
}

Status PmemDevice::SaveToFile(const std::string& path) const {
  StripeGuard guard(*this, 0, durable_.size());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Internal("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(durable_.data(), 1, durable_.size(), f);
  std::fclose(f);
  if (written != durable_.size()) {
    return Internal("short write to " + path);
  }
  return OkStatus();
}

Status PmemDevice::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFound("cannot open " + path);
  }
  StripeGuard guard(*this, 0, durable_.size());
  const size_t read = std::fread(durable_.data(), 1, durable_.size(), f);
  std::fclose(f);
  if (read != durable_.size()) {
    return Corruption("short read from " + path);
  }
  std::memcpy(live_.data(), durable_.data(), live_.size());
  return OkStatus();
}

void PmemDevice::AddObserver(DurabilityObserver* observer) {
  observers_.push_back(observer);
}

void PmemDevice::RemoveObserver(DurabilityObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

bool PmemDevice::IsDurable(PmOffset offset, size_t size) const {
  assert(offset + size <= live_.size());
  StripeGuard guard(*this, offset, size);
  return std::memcmp(live_.data() + offset, durable_.data() + offset, size) ==
         0;
}

}  // namespace arthas
