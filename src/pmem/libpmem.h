// Low-level persistence primitives (libpmem-mini).
//
// Some PM systems (the paper calls this "native persistence", e.g. CCEH) do
// not use the object API; they write through raw pointers and issue cache
// line write-backs plus store fences themselves. These free functions are
// the clwb/sfence/pmem_persist analogues over a PmemDevice, taking live
// pointers so call sites read like the original code.

#ifndef ARTHAS_PMEM_LIBPMEM_H_
#define ARTHAS_PMEM_LIBPMEM_H_

#include <cassert>

#include "pmem/device.h"

namespace arthas {

// pmem_persist(addr, len): flush + fence in one step, with durability
// observers notified (a persistence point).
inline void PmemPersist(PmemDevice& device, const void* addr, size_t len) {
  const PmOffset off = device.OffsetOf(addr);
  assert(off != kNullPmOffset && "pointer not in persistent memory");
  device.Persist(off, len);
}

// clwb: stage the cache lines covering [addr, addr+len) for write-back.
// Not durable until the next Sfence.
inline void Clwb(PmemDevice& device, const void* addr, size_t len) {
  const PmOffset off = device.OffsetOf(addr);
  assert(off != kNullPmOffset && "pointer not in persistent memory");
  device.FlushLines(off, len);
}

// sfence: make all staged lines durable (fires durability observers).
inline void Sfence(PmemDevice& device) { device.Drain(); }

}  // namespace arthas

#endif  // ARTHAS_PMEM_LIBPMEM_H_
