// Simulated byte-addressable persistent memory device.
//
// The paper's testbed uses Intel Optane DC PMEM DIMMs. What every Arthas
// experiment actually relies on is PM *semantics*, not media latency:
//
//   * stores become visible to the CPU immediately (they sit in the cache),
//   * they become durable only after an explicit flush (clwb) followed by a
//     fence (sfence), or a convenience persist of a range,
//   * on a crash or restart, only flushed-and-fenced bytes survive.
//
// PmemDevice models exactly that boundary with two images: `live` is the
// CPU-visible view that programs read and write through real pointers, and
// `durable` is the media image that persists survive into. Crash() discards
// everything that never reached the durable image, which is how the harness
// implements process restarts and machine crashes.
//
// DurabilityObserver is the hook surface the Arthas checkpoint library
// attaches to: it fires once per persisted range, at the durability point,
// which is what lets checkpointing respect the program's own persistence
// granularity and timing (paper Section 4.2).
//
// Concurrency model (see DESIGN.md "Concurrency model"):
//   * The live image is ordinary memory: loads/stores through Live() are the
//     application's to synchronize, exactly as with pmem_map_file memory.
//   * Durability operations (Persist/FlushLines/Drain/RawRestore) are
//     thread-safe. The durable image is covered by kNumStripes lock
//     stripes keyed by cache-line index; an operation locks the stripes its
//     line range maps to, in ascending stripe order. Observer callbacks run
//     at the durability point with the range's stripes held, so an observer
//     sees a stable pre-copy durable image for that range. FlushLines is
//     lock-free: staged lines live in an atomic bitmap, not a list.
//   * IsDurable is a lock-free compare; like reads of Live(), it is the
//     caller's job not to race it with persists of the same range.
//   * Crash() takes every stripe (ascending), so it observes a consistent
//     unflushed-line set: no persist can be half-applied when the power
//     "fails".
//   * AddObserver/RemoveObserver and the whole-image save/restore helpers
//     are caller-serialized: attach observers and snapshot images while no
//     concurrent durability traffic runs (the harness quiesces first).

#ifndef ARTHAS_PMEM_DEVICE_H_
#define ARTHAS_PMEM_DEVICE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace arthas {

// Byte offset within a device. Offset 0 is valid; kNullPmOffset marks "no
// object" in persistent pointers.
using PmOffset = uint64_t;
constexpr PmOffset kNullPmOffset = ~0ULL;

constexpr size_t kCacheLineSize = 64;

// Receives durability events from a PmemDevice. All offsets are
// device-relative; `data` points into the live image and is valid only for
// the duration of the call. Callbacks fire with the range's lock stripes
// held: implementations must not call back into durability operations of the
// same device (they may read Live()/Durable() pointers for the range).
class DurabilityObserver {
 public:
  virtual ~DurabilityObserver() = default;

  // A range has just become durable (flush + fence completed).
  virtual void OnPersist(PmOffset offset, size_t size, const void* data) = 0;
};

// Counters exposed for the overhead benchmarks. Fields are atomics so
// concurrent flushers can bump them without a lock; readers load them
// individually (the struct itself is not copyable).
struct PmemDeviceStats {
  std::atomic<uint64_t> persists{0};
  std::atomic<uint64_t> flushed_lines{0};
  std::atomic<uint64_t> drains{0};
  std::atomic<uint64_t> persisted_bytes{0};
  std::atomic<uint64_t> crashes{0};
};

class PmemDevice {
 public:
  // Lock stripes covering the durable image, keyed by cache-line index.
  static constexpr size_t kNumStripes = 64;

  // Creates a device of `size` bytes, both images zero-filled.
  explicit PmemDevice(size_t size);

  PmemDevice(const PmemDevice&) = delete;
  PmemDevice& operator=(const PmemDevice&) = delete;

  size_t size() const { return live_.size(); }

  // Process-unique id (1-based) identifying this device in flight-recorder
  // events and forensics reports.
  uint32_t device_id() const { return device_id_; }

  // Direct pointers into the live (CPU-visible) image. Programs read and
  // write through these exactly as they would through pmem_map_file memory.
  uint8_t* Live(PmOffset offset) { return live_.data() + offset; }
  const uint8_t* Live(PmOffset offset) const { return live_.data() + offset; }

  // Read-only view of the media image, used by pool checkers and snapshots.
  const uint8_t* Durable(PmOffset offset) const {
    return durable_.data() + offset;
  }

  // Translates a pointer into the live image back to its device offset.
  // Returns kNullPmOffset if `p` does not point into this device.
  PmOffset OffsetOf(const void* p) const;

  // clwb/sfence-style durability: rounds the range out to cache lines,
  // copies live -> durable, and notifies observers. Equivalent to
  // pmem_persist(addr, size). Thread-safe (locks the range's stripes).
  void Persist(PmOffset offset, size_t size);

  // Durability without observer notification. Used for pool-internal
  // metadata (allocator headers, undo log) so the checkpoint log sees only
  // application PM updates. Thread-safe.
  void PersistQuiet(PmOffset offset, size_t size);

  // Two-step variant: FlushLines stages lines, Drain makes all staged lines
  // durable (and fires observer callbacks). Models clwb ... sfence code.
  // Thread-safe and, on the FlushLines side, lock-free: staged lines live in
  // an atomic per-cache-line bitmap (one word per 64 lines), so concurrent
  // flushers never serialize on a pending list. A Drain claims each word
  // with an atomic exchange and drains the lines staged by every thread up
  // to that moment, exactly as an sfence fences every prior clwb.
  //
  // Like real clwb, staging is line-granular: Drain coalesces adjacent
  // staged lines into one observer callback per contiguous run, and a line
  // flushed twice before the fence becomes durable (and is observed) once.
  void FlushLines(PmOffset offset, size_t size);
  void Drain();

  // Per-thread persist batching (the network plane's pipelined-batch
  // durability amortization). While the calling thread holds a BatchScope
  // on this device, Persist() only stages the range's lines (a clwb without
  // the sfence); the outermost scope's destructor issues the one Drain that
  // makes everything staged durable and fires the observer callbacks with
  // adjacent lines coalesced. A line written by several requests of the
  // batch is copied (and observed) once — exactly the semantics of issuing
  // one sfence after a pipelined run of clwb'd stores. The final durable
  // image is bit-identical to per-request persists of the same stores; what
  // changes is when durability (and its cost) happens, so a crash *inside*
  // the batch loses up to the whole batch instead of up to one request.
  //
  // The scope is thread-local: only the owning thread's Persist() calls are
  // deferred, and the drain fences every staged line (its own and, like a
  // real sfence, any other thread's lines staged via FlushLines). Callers
  // must keep the batch inside their request critical section: the drain
  // reads live-image bytes, so it must run before another thread may write
  // the batch's lines (NetDispatcher drains before releasing the request
  // lock). PersistQuiet (allocator metadata) is never deferred. Nesting on
  // the same device is collapsed to the outermost scope; a scope on a
  // second device while one is active is independent (each device defers
  // only its own persists).
  class BatchScope {
   public:
    explicit BatchScope(PmemDevice& device);
    ~BatchScope();  // drains if this was the thread's outermost scope
    BatchScope(const BatchScope&) = delete;
    BatchScope& operator=(const BatchScope&) = delete;

   private:
    friend class PmemDevice;  // InThreadBatch walks the scope chain
    PmemDevice& device_;
    BatchScope* parent_;  // previous scope of this thread (any device)
  };

  // True when the calling thread is inside a BatchScope for this device.
  bool InThreadBatch() const;

  // Discards all non-durable state: the live image is rebuilt from the
  // durable image. This is what a process restart or power failure does.
  // Takes every stripe, so the discarded (unflushed) line set is consistent:
  // concurrent persists are either fully durable or fully discarded.
  // Not linearizable with an in-flight Drain (quiesce flushers first, as
  // the harness does).
  void Crash();

  // Raw mutation of both images at once, bypassing durability events.
  // Used only by recovery tooling (the reactor's reversion step and the
  // pmCRIU baseline's image restore); never by target systems.
  void RawRestore(PmOffset offset, const void* data, size_t size);

  // Whole-image snapshots for the pmCRIU baseline. A snapshot captures the
  // durable image (what CRIU would dump from the PM pool file).
  std::vector<uint8_t> SnapshotDurable() const;
  Status RestoreDurable(const std::vector<uint8_t>& image);

  // Save/load the durable image to a file, for cross-process style use.
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

  void AddObserver(DurabilityObserver* observer);
  void RemoveObserver(DurabilityObserver* observer);

  const PmemDeviceStats& stats() const { return stats_; }

  // True if every byte of [offset, offset+size) is identical in the live and
  // durable images, i.e. the range is fully persisted. Lock-free: the
  // comparison takes no stripes, so it must not race with concurrent
  // persists or drains of the same range (readers of Live() already carry
  // that obligation — the live image is plain memory).
  bool IsDurable(PmOffset offset, size_t size) const;

  // Number of cache lines currently flushed but not yet drained. Lock-free
  // (relaxed scan of the staging bitmap between the watermarks), so the
  // count is approximate under concurrent flush/drain traffic — intended
  // for telemetry probes, not invariants.
  uint64_t PendingLineCount() const {
    const uint64_t lo = pending_lo_.load(std::memory_order_relaxed);
    const uint64_t hi = pending_hi_.load(std::memory_order_relaxed);
    if (lo > hi) {
      return 0;
    }
    uint64_t count = 0;
    for (uint64_t w = lo; w <= hi && w < num_pending_words_; w++) {
      count += static_cast<uint64_t>(__builtin_popcountll(
          pending_words_[w].load(std::memory_order_relaxed)));
    }
    return count;
  }

 private:
  // Locks every stripe covering [offset, offset+size) in ascending stripe
  // order (the deadlock-free total order); unlocks in reverse. A default-
  // constructed-with-all guard (offset 0, size = device size) is what
  // Crash() and the image helpers use.
  class StripeGuard {
   public:
    StripeGuard(const PmemDevice& device, PmOffset offset, size_t size);
    ~StripeGuard();
    StripeGuard(const StripeGuard&) = delete;
    StripeGuard& operator=(const StripeGuard&) = delete;

   private:
    const PmemDevice& device_;
    uint64_t mask_ = 0;  // bit i set => stripes_[i] held
  };

  // Caller must hold the stripes covering the range.
  void MakeDurable(PmOffset offset, size_t size);
  void NotifyAndMakeDurable(PmOffset offset, size_t size);

  // Resets the staged-line bitmap and its scan watermarks. Caller must have
  // quiesced flushers (Crash/RestoreDurable hold every stripe).
  void ClearPending();

  std::vector<uint8_t> live_;
  std::vector<uint8_t> durable_;
  uint32_t device_id_ = 0;
  mutable std::array<std::mutex, kNumStripes> stripes_;
  // Flushed-but-not-drained cache lines: bit i of word w covers line
  // w * 64 + i. fetch_or on flush, exchange(0) on drain — no lock anywhere
  // on the staging path.
  std::unique_ptr<std::atomic<uint64_t>[]> pending_words_;
  size_t num_pending_words_ = 0;
  // Inclusive word-range watermarks bounding the Drain scan; lo > hi means
  // "nothing staged". Monotone under concurrent flushes (CAS min/max),
  // reset only under full quiesce.
  std::atomic<uint64_t> pending_lo_{~0ULL};
  std::atomic<uint64_t> pending_hi_{0};
  std::vector<DurabilityObserver*> observers_;
  PmemDeviceStats stats_;
};

}  // namespace arthas

#endif  // ARTHAS_PMEM_DEVICE_H_
