// Persistent memory pool: a pmemobj-mini.
//
// PmemPool layers a persistent object API on a PmemDevice, mirroring the
// subset of PMDK's libpmemobj that the paper's target systems use:
//
//   * a named layout and a root object (pmemobj_create / pmemobj_root),
//   * Oid-based allocation: Zalloc / Alloc / Free / Realloc and Direct()
//     translation to a live pointer (pmemobj_zalloc / pmemobj_direct),
//   * explicit persistence of object ranges (pmemobj_persist),
//   * undo-log transactions (see pmem/tx.h).
//
// Allocator metadata (block headers, free list, pool header) is itself kept
// in PM and persisted with *internal* (non-observed) persists so that the
// Arthas checkpoint log records application PM updates, not heap bookkeeping
// — matching the paper's modified PMDK, which intercepts object updates.
//
// PoolObserver is the second half of the Arthas hook surface (the first is
// DurabilityObserver on the device): allocation, free, and realloc events
// feed the checkpoint log's old_entry/new_entry linkage and the persistent
// memory leak mitigation of paper Section 4.7.
//
// Concurrency model (see DESIGN.md "Concurrency model"):
//   * All allocator operations (Alloc/Zalloc/Free/Realloc/Root/UsableSize/
//     ForEachBlock/CheckIntegrity) and all transaction operations are
//     serialized on one pool mutex; the buddy tree, the pool header, and
//     the undo slot table are only touched under it.
//   * Transactions are per-thread: each thread opens its own TxContext.
//     Concurrent transactions must cover disjoint PM ranges (the usual
//     libpmemobj contract); the undo region is partitioned into per-slot
//     logs so their snapshots never interleave.
//   * Lock order: pool mutex -> device stripes -> checkpoint shards. Pool
//     code never calls back into itself from device observers.
//   * AddObserver/RemoveObserver are caller-serialized (attach while no
//     concurrent pool traffic runs).

#ifndef ARTHAS_PMEM_POOL_H_
#define ARTHAS_PMEM_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "pmem/device.h"

namespace arthas {

// Persistent object handle: an offset into the pool's device. Stable across
// restarts (unlike live pointers).
struct Oid {
  PmOffset off = kNullPmOffset;

  bool is_null() const { return off == kNullPmOffset; }
  static Oid Null() { return Oid{}; }

  bool operator==(const Oid& other) const { return off == other.off; }
};

// Observes pool-level events (allocation lifecycle and transactions).
// Callbacks run with the pool mutex held; implementations must not call
// back into the pool.
class PoolObserver {
 public:
  virtual ~PoolObserver() = default;
  virtual void OnAlloc(PmOffset offset, size_t size) = 0;
  virtual void OnFree(PmOffset offset, size_t size) = 0;
  virtual void OnRealloc(PmOffset old_offset, size_t old_size,
                         PmOffset new_offset, size_t new_size) = 0;
  virtual void OnTxBegin(uint64_t tx_id) = 0;
  virtual void OnTxCommit(uint64_t tx_id) = 0;
};

// Fields are atomics so the monitor-style readers (detector, harness) can
// poll them while worker threads allocate.
struct PoolStats {
  std::atomic<uint64_t> allocs{0};
  std::atomic<uint64_t> frees{0};
  std::atomic<uint64_t> reallocs{0};
  std::atomic<uint64_t> used_bytes{0};  // payload bytes currently allocated
  std::atomic<uint64_t> live_objects{0};
};

// Per-thread undo-log transaction state. Each concurrently running
// transaction owns one TxContext (stack- or thread-local); the pool's
// single-context API (TxBegin()/TxCommit()/... without a context) wraps a
// pool-owned default context, preserving the original single-threaded
// behaviour bit for bit.
struct TxContext {
  bool active = false;
  uint64_t tx_id = 0;
  int slot = -1;              // persistent undo slot; 0 = header-based slot
  PmOffset undo_base = 0;     // start of this tx's undo log region
  uint64_t undo_capacity = 0; // bytes available to this tx's undo log
  uint64_t log_count = 0;
  uint64_t log_bytes = 0;
};

class PmemTx;

class PmemPool {
 public:
  // Slot 0 lives in the pool header (the original single-transaction
  // layout); kExtraTxSlots more concurrent transactions get fixed chunks
  // carved from the top of the undo region, with persistent descriptors so
  // recovery can roll them back too.
  static constexpr int kExtraTxSlots = 7;
  static constexpr int kMaxConcurrentTx = 1 + kExtraTxSlots;

  // Creates a fresh pool of `size` bytes with the given layout name, or
  // opens an existing image (after a crash/restart) validating the layout.
  static Result<std::unique_ptr<PmemPool>> Create(std::string layout,
                                                  size_t size);
  static Result<std::unique_ptr<PmemPool>> Open(std::unique_ptr<PmemDevice> device,
                                                const std::string& layout);

  ~PmemPool();
  PmemPool(const PmemPool&) = delete;
  PmemPool& operator=(const PmemPool&) = delete;

  PmemDevice& device() { return *device_; }
  const PmemDevice& device() const { return *device_; }

  // Simulates a process restart / power failure and re-runs pool recovery
  // (which rolls back any in-flight transaction, in every undo slot).
  // Volatile program state is the caller's to discard; this resets the PM
  // view. Caller-serialized: quiesce worker threads first.
  Status CrashAndRecover();

  // --- Object allocation -------------------------------------------------

  // Allocates `size` bytes; Zalloc additionally zeroes (and persists) them.
  Result<Oid> Alloc(size_t size);
  Result<Oid> Zalloc(size_t size);
  Status Free(Oid oid);
  // Grows or shrinks an object, copying min(old,new) payload bytes.
  Result<Oid> Realloc(Oid oid, size_t new_size);

  // Payload size of an allocated object.
  Result<size_t> UsableSize(Oid oid) const;

  // Live-pointer translation (pmemobj_direct). Returns nullptr for null oid.
  template <typename T = void>
  T* Direct(Oid oid) {
    if (oid.is_null()) {
      return nullptr;
    }
    return reinterpret_cast<T*>(device_->Live(oid.off));
  }
  template <typename T = void>
  const T* Direct(Oid oid) const {
    if (oid.is_null()) {
      return nullptr;
    }
    return reinterpret_cast<const T*>(device_->Live(oid.off));
  }

  // Reverse translation: live pointer -> oid (must point into the pool).
  Oid OidOf(const void* p) const;

  // --- Root object --------------------------------------------------------

  // Returns the root object, allocating (zeroed) on first call.
  Result<Oid> Root(size_t size);
  bool HasRoot() const;

  // --- Persistence --------------------------------------------------------

  // Makes [Direct(oid)+offset, +size) durable and notifies durability
  // observers; the application-facing persistence point. Thread-safe (the
  // device takes its own stripe locks).
  void Persist(Oid oid, size_t offset, size_t size);
  void PersistRange(PmOffset offset, size_t size) {
    device_->Persist(offset, size);
  }
  // Persist an entire struct the oid points at.
  template <typename T>
  void PersistObject(Oid oid) {
    Persist(oid, 0, sizeof(T));
  }

  // --- Transactions (see pmem/tx.h for the guard object) ------------------
  //
  // The context-taking forms are the multi-threaded API: each thread passes
  // its own TxContext. The context-free forms operate on the pool's default
  // context and exist for the original single-threaded callers.

  Status TxBegin(TxContext& ctx);
  Status TxAddRange(TxContext& ctx, PmOffset offset, size_t size);
  Status TxAddRange(TxContext& ctx, Oid oid, size_t offset, size_t size);
  Status TxCommit(TxContext& ctx);
  Status TxAbort(TxContext& ctx);

  Status TxBegin() { return TxBegin(default_tx_); }
  Status TxAddRange(PmOffset offset, size_t size) {
    return TxAddRange(default_tx_, offset, size);
  }
  Status TxAddRange(Oid oid, size_t offset, size_t size) {
    return TxAddRange(default_tx_, oid, offset, size);
  }
  Status TxCommit() { return TxCommit(default_tx_); }
  Status TxAbort() { return TxAbort(default_tx_); }
  bool InTx() const { return default_tx_.active; }

  // --- Introspection -------------------------------------------------------

  // Walks every heap block. `used` is true for allocated blocks; offset/size
  // describe the payload.
  void ForEachBlock(
      const std::function<void(PmOffset offset, size_t size, bool used)>& fn)
      const;

  // Verifies pool metadata integrity (header checksum, block headers, free
  // list). The pmempool-check analogue used by the consistency evaluation.
  Status CheckIntegrity() const;

  // Byte ranges within [offset, offset+size) that are allocator metadata
  // (block headers) under the *current* heap layout. External reversion
  // tooling restores payload bytes around these so it never corrupts the
  // heap structure (PMDK keeps its metadata out-of-band; our boundary tags
  // are inline, so the checkpoint restore must skip them).
  std::vector<std::pair<PmOffset, size_t>> MetadataRangesIn(PmOffset offset,
                                                            size_t size) const;

  const PoolStats& stats() const { return stats_; }
  size_t Capacity() const;
  // Bytes still allocatable (upper bound; ignores fragmentation).
  size_t FreeBytes() const;

  void AddObserver(PoolObserver* observer);
  void RemoveObserver(PoolObserver* observer);

  const std::string& layout() const { return layout_; }

 private:
  friend class PmemTx;

  PmemPool(std::unique_ptr<PmemDevice> device, std::string layout);

  Status Format(size_t size);
  Status Recover();
  struct PoolHeader;
  struct BlockHeader;
  struct TxSlotDescriptor;
  PoolHeader* header();
  const PoolHeader* header() const;
  BlockHeader* BlockAt(PmOffset offset);
  const BlockHeader* BlockAt(PmOffset offset) const;
  void PersistHeader();
  void PersistBlockHeader(PmOffset offset);
  void CoalesceFreeBlocks();
  Result<Oid> AllocInternal(size_t size, bool zero);
  Status FreeLocked(Oid oid);
  Result<size_t> UsableSizeLocked(Oid oid) const;

  // Extra-slot undo layout helpers (all require the pool mutex).
  uint64_t ExtraTxChunkBytes() const;
  PmOffset ExtraTxSlotBase(int slot) const;     // slot in [1, kExtraTxSlots]
  PmOffset TxSlotDescriptorOffset(int slot) const;
  void PersistTxSlotDescriptor(int slot);
  // Capacity currently usable by slot 0: the full undo region, shrunk only
  // while extra slots are active (so single-threaded behaviour is
  // unchanged).
  uint64_t Slot0CapacityLocked() const;
  void RollbackUndoLog(PmOffset log_base, uint64_t log_count);

  // Buddy-allocator internals (state array in the out-of-band metadata
  // region; see the design comment in pool.cc).
  uint8_t* TreeState();
  const uint8_t* TreeState() const;
  void PersistNode(uint64_t node);
  uint64_t NodeOffset(uint64_t node, size_t node_order) const;
  uint64_t FindFreeNode(uint64_t node, size_t node_order, size_t target);
  std::pair<uint64_t, size_t> FindUsedNode(PmOffset offset) const;
  void WalkTree(uint64_t node, size_t node_order,
                const std::function<void(PmOffset, size_t, bool)>& fn) const;

  std::unique_ptr<PmemDevice> device_;
  std::string layout_;
  std::vector<PoolObserver*> observers_;
  PoolStats stats_;
  // Serializes allocator state, the pool header, and tx slot assignment.
  mutable std::mutex mutex_;
  uint64_t next_tx_id_ = 1;
  // Volatile occupancy of the undo slots (persistent side: header fields
  // for slot 0, TxSlotDescriptors for the rest).
  bool slot_busy_[kMaxConcurrentTx] = {};
  TxContext default_tx_;  // backs the context-free single-threaded API
};

}  // namespace arthas

#endif  // ARTHAS_PMEM_POOL_H_
