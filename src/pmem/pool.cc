#include "pmem/pool.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/crc32.h"
#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "obs/resource/resource_accountant.h"

namespace arthas {

// The allocator is a buddy allocator whose state lives in a dedicated
// metadata region, *outside* the object heap — mirroring PMDK, whose chunk
// metadata is out-of-band. Two properties of the evaluation depend on this:
//
//  * restoring checkpointed payload bytes can never corrupt heap metadata
//    (the reactor reverts ranges that may span objects), and
//  * a buffer overrun from one object clobbers its neighbor's *payload*,
//    not an allocator header — which is exactly the failure shape of the
//    studied bugs (f4, f10).
//
// The buddy tree is a per-node state array (free / split / used). Node
// indices are heap-shaped: node 1 is the whole heap, children 2i / 2i+1.
// Allocation descends leftmost-first, which also gives the deterministic
// address reuse after free that the f1/f10 reproductions rely on.
//
// Undo-slot layout: slot 0 is the original single-transaction design — its
// activity flag and log cursor live in the pool header, and its log grows
// up from the start of the undo region, with the *whole* region as its
// capacity while it runs alone. Extra slots (for concurrent transactions)
// carve fixed chunks from the top of the same region, below a descriptor
// table at the very top. The descriptors use a magic activity tag rather
// than a boolean so that an old single-threaded image whose slot-0 log grew
// over the (then-unused) table is never misread as live extra slots.

namespace {
constexpr uint64_t kPoolMagic = 0x41525448'41535032ULL;  // "ARTHASP2"
constexpr uint64_t kTxSlotActiveMagic = 0x41525448'54584c31ULL;  // "ARTHTXL1"
constexpr uint8_t kNodeFree = 0;
constexpr uint8_t kNodeSplit = 1;
constexpr uint8_t kNodeUsed = 2;
constexpr size_t kMinOrder = 5;  // 32-byte minimum block

size_t AlignUp(size_t n, size_t align) { return (n + align - 1) & ~(align - 1); }

int OrderForSize(size_t heap_order, size_t size) {
  size_t order = kMinOrder;
  while ((1ULL << order) < size) {
    order++;
  }
  return order > heap_order ? -1 : static_cast<int>(order);
}
}  // namespace

// Lives at device offset 0. All fields are persisted quietly (metadata).
struct PmemPool::PoolHeader {
  uint64_t magic;
  char layout[40];
  uint64_t pool_size;
  uint64_t root_off;   // payload offset of root object, kNullPmOffset if none
  uint64_t root_size;
  uint64_t undo_off;       // start of undo-log region
  uint64_t undo_capacity;  // bytes in undo-log region
  uint64_t tree_off;       // start of the buddy state array
  uint64_t tree_nodes;     // number of nodes in the array
  uint64_t heap_base;      // start of the object heap (power-of-two sized)
  uint64_t heap_order;     // log2(heap size)
  uint64_t used_bytes;
  uint64_t live_objects;
  uint64_t tx_active;      // slot 0 activity flag
  uint64_t tx_log_count;   // slot 0 log entries
  uint64_t tx_log_bytes;   // slot 0 log cursor
  uint32_t crc;
  uint32_t pad;
};

// Kept only as an opaque tag for the legacy BlockAt helpers (unused by the
// buddy design); declared to satisfy the header's friend declarations.
struct PmemPool::BlockHeader {
  uint64_t unused;
};

// Persistent descriptor of one extra undo slot, in the table at the top of
// the undo region. `magic_active` holds kTxSlotActiveMagic while the slot's
// transaction is in flight, 0 (or stale payload bytes) otherwise.
struct PmemPool::TxSlotDescriptor {
  uint64_t magic_active;
  uint64_t log_count;
  uint64_t log_bytes;
};

namespace {
// Undo-log entry layout inside the undo region: header then `size` old bytes.
struct UndoEntryHeader {
  uint64_t offset;
  uint64_t size;
};
}  // namespace

PmemPool::PmemPool(std::unique_ptr<PmemDevice> device, std::string layout)
    : device_(std::move(device)), layout_(std::move(layout)) {}

PmemPool::~PmemPool() = default;

PmemPool::PoolHeader* PmemPool::header() {
  return reinterpret_cast<PoolHeader*>(device_->Live(0));
}
const PmemPool::PoolHeader* PmemPool::header() const {
  return reinterpret_cast<const PoolHeader*>(device_->Live(0));
}

PmemPool::BlockHeader* PmemPool::BlockAt(PmOffset) { return nullptr; }
const PmemPool::BlockHeader* PmemPool::BlockAt(PmOffset) const {
  return nullptr;
}

void PmemPool::PersistHeader() {
  PoolHeader* h = header();
  h->crc = 0;
  h->crc = Crc32c(h, sizeof(PoolHeader));
  device_->PersistQuiet(0, sizeof(PoolHeader));
}

void PmemPool::PersistBlockHeader(PmOffset) {}

// --- Undo-slot layout helpers -------------------------------------------------

uint64_t PmemPool::ExtraTxChunkBytes() const {
  const PoolHeader* h = header();
  const uint64_t table = kExtraTxSlots * sizeof(TxSlotDescriptor);
  return (h->undo_capacity - table) / kMaxConcurrentTx;
}

PmOffset PmemPool::TxSlotDescriptorOffset(int slot) const {
  assert(slot >= 1 && slot <= kExtraTxSlots);
  const PoolHeader* h = header();
  return h->undo_off + h->undo_capacity -
         (kExtraTxSlots - (slot - 1)) * sizeof(TxSlotDescriptor);
}

PmOffset PmemPool::ExtraTxSlotBase(int slot) const {
  assert(slot >= 1 && slot <= kExtraTxSlots);
  const PoolHeader* h = header();
  const PmOffset table_base =
      h->undo_off + h->undo_capacity - kExtraTxSlots * sizeof(TxSlotDescriptor);
  return table_base - slot * ExtraTxChunkBytes();
}

void PmemPool::PersistTxSlotDescriptor(int slot) {
  device_->PersistQuiet(TxSlotDescriptorOffset(slot), sizeof(TxSlotDescriptor));
}

uint64_t PmemPool::Slot0CapacityLocked() const {
  const PoolHeader* h = header();
  uint64_t limit = h->undo_capacity;
  for (int i = 1; i <= kExtraTxSlots; i++) {
    if (slot_busy_[i]) {
      limit = std::min<uint64_t>(limit, ExtraTxSlotBase(i) - h->undo_off);
    }
  }
  return limit;
}

// --- Buddy-tree helpers -------------------------------------------------------

uint8_t* PmemPool::TreeState() { return device_->Live(header()->tree_off); }
const uint8_t* PmemPool::TreeState() const {
  return device_->Live(header()->tree_off);
}

void PmemPool::PersistNode(uint64_t node) {
  device_->PersistQuiet(header()->tree_off + node, 1);
}

uint64_t PmemPool::NodeOffset(uint64_t node, size_t node_order) const {
  const PoolHeader* h = header();
  const uint64_t index_in_level = node - (1ULL << (h->heap_order - node_order));
  return h->heap_base + index_in_level * (1ULL << node_order);
}

Result<std::unique_ptr<PmemPool>> PmemPool::Create(std::string layout,
                                                   size_t size) {
  if (layout.size() >= sizeof(PoolHeader::layout)) {
    return Status(StatusCode::kInvalidArgument, "layout name too long");
  }
  if (size < 64 * 1024) {
    return Status(StatusCode::kInvalidArgument, "pool too small (< 64 KiB)");
  }
  auto pool = std::unique_ptr<PmemPool>(
      new PmemPool(std::make_unique<PmemDevice>(size), std::move(layout)));
  ARTHAS_RETURN_IF_ERROR(pool->Format(size));
  return pool;
}

Result<std::unique_ptr<PmemPool>> PmemPool::Open(
    std::unique_ptr<PmemDevice> device, const std::string& layout) {
  auto pool =
      std::unique_ptr<PmemPool>(new PmemPool(std::move(device), layout));
  const PoolHeader* h = pool->header();
  if (h->magic != kPoolMagic) {
    return Status(StatusCode::kCorruption, "bad pool magic");
  }
  if (layout != h->layout) {
    return Status(StatusCode::kInvalidArgument, "layout mismatch");
  }
  ARTHAS_RETURN_IF_ERROR(pool->Recover());
  return pool;
}

Status PmemPool::Format(size_t size) {
  const size_t undo_capacity =
      std::clamp<size_t>(size / 8, 16 * 1024, 1 * 1024 * 1024);
  const PmOffset undo_off = AlignUp(sizeof(PoolHeader), kCacheLineSize);

  // Pick the largest power-of-two heap such that header + undo + state tree
  // + heap fit in the device.
  size_t heap_order = kMinOrder;
  PmOffset tree_off = 0;
  PmOffset heap_base = 0;
  uint64_t tree_nodes = 0;
  for (size_t order = kMinOrder; order < 48; order++) {
    const uint64_t nodes = 2ULL << (order - kMinOrder);  // 2 * leaves
    const PmOffset t_off = AlignUp(undo_off + undo_capacity, kCacheLineSize);
    const PmOffset h_base = AlignUp(t_off + nodes, kCacheLineSize);
    if (h_base + (1ULL << order) > size) {
      break;
    }
    heap_order = order;
    tree_off = t_off;
    heap_base = h_base;
    tree_nodes = nodes;
  }
  if (heap_base == 0) {
    return InvalidArgument("pool too small for heap");
  }

  PoolHeader* h = header();
  std::memset(h, 0, sizeof(PoolHeader));
  h->magic = kPoolMagic;
  std::strncpy(h->layout, layout_.c_str(), sizeof(h->layout) - 1);
  h->pool_size = size;
  h->root_off = kNullPmOffset;
  h->root_size = 0;
  h->undo_off = undo_off;
  h->undo_capacity = undo_capacity;
  h->tree_off = tree_off;
  h->tree_nodes = tree_nodes;
  h->heap_base = heap_base;
  h->heap_order = heap_order;
  std::memset(device_->Live(tree_off), kNodeFree, tree_nodes);
  device_->PersistQuiet(tree_off, tree_nodes);
  PersistHeader();
  return OkStatus();
}

// Applies one undo log in reverse entry order (newest snapshot first), as
// libpmemobj does on recovery and abort.
void PmemPool::RollbackUndoLog(PmOffset log_base, uint64_t log_count) {
  std::vector<PmOffset> entry_offsets;
  PmOffset cursor = log_base;
  for (uint64_t i = 0; i < log_count; i++) {
    UndoEntryHeader eh;
    std::memcpy(&eh, device_->Live(cursor), sizeof(eh));
    entry_offsets.push_back(cursor);
    cursor += sizeof(UndoEntryHeader) + AlignUp(eh.size, 8);
  }
  for (auto it = entry_offsets.rbegin(); it != entry_offsets.rend(); ++it) {
    UndoEntryHeader eh;
    std::memcpy(&eh, device_->Live(*it), sizeof(eh));
    std::memcpy(device_->Live(eh.offset),
                device_->Live(*it + sizeof(UndoEntryHeader)), eh.size);
    device_->PersistQuiet(eh.offset, eh.size);
  }
}

Status PmemPool::Recover() {
  std::lock_guard<std::mutex> lock(mutex_);
  PoolHeader* h = header();
  stats_.used_bytes = h->used_bytes;
  stats_.live_objects = h->live_objects;
  ARTHAS_RESOURCE_SET("pmem.pool.used.bytes", "bytes", h->used_bytes);
  if (h->tx_active != 0) {
    // Crash happened inside a transaction: apply the undo log.
    ARTHAS_LOG(Info) << "pool recovery: rolling back in-flight transaction ("
                     << h->tx_log_count << " ranges)";
    RollbackUndoLog(h->undo_off, h->tx_log_count);
    h->tx_active = 0;
    h->tx_log_count = 0;
    h->tx_log_bytes = 0;
    PersistHeader();
  }
  // Extra undo slots: roll back any transaction that was in flight on a
  // concurrent thread. Concurrent transactions cover disjoint ranges, so
  // the cross-slot rollback order is immaterial.
  for (int slot = 1; slot <= kExtraTxSlots; slot++) {
    TxSlotDescriptor desc;
    std::memcpy(&desc, device_->Live(TxSlotDescriptorOffset(slot)),
                sizeof(desc));
    if (desc.magic_active != kTxSlotActiveMagic) {
      continue;
    }
    ARTHAS_LOG(Info) << "pool recovery: rolling back in-flight transaction in "
                        "undo slot "
                     << slot << " (" << desc.log_count << " ranges)";
    RollbackUndoLog(ExtraTxSlotBase(slot), desc.log_count);
    desc = TxSlotDescriptor{};
    std::memcpy(device_->Live(TxSlotDescriptorOffset(slot)), &desc,
                sizeof(desc));
    PersistTxSlotDescriptor(slot);
  }
  for (bool& busy : slot_busy_) {
    busy = false;
  }
  default_tx_ = TxContext{};
  return OkStatus();
}

Status PmemPool::CrashAndRecover() {
  device_->Crash();
  return Recover();
}

// Descends leftmost-first looking for a free node of `target` order.
// Returns the node index or 0.
uint64_t PmemPool::FindFreeNode(uint64_t node, size_t node_order,
                                size_t target) {
  uint8_t* state = TreeState();
  if (state[node] == kNodeUsed) {
    return 0;
  }
  if (node_order == target) {
    return state[node] == kNodeFree ? node : 0;
  }
  if (state[node] == kNodeFree) {
    // Split lazily: children become free halves.
    state[node] = kNodeSplit;
    state[2 * node] = kNodeFree;
    state[2 * node + 1] = kNodeFree;
    PersistNode(node);
    PersistNode(2 * node);
    PersistNode(2 * node + 1);
  }
  const uint64_t left = FindFreeNode(2 * node, node_order - 1, target);
  if (left != 0) {
    return left;
  }
  return FindFreeNode(2 * node + 1, node_order - 1, target);
}

// Requires the pool mutex.
Result<Oid> PmemPool::AllocInternal(size_t size, bool zero) {
  ARTHAS_SCOPED_LATENCY("pool.alloc.ns");
  if (size == 0) {
    return Status(StatusCode::kInvalidArgument, "zero-size allocation");
  }
  PoolHeader* h = header();
  const int order = OrderForSize(h->heap_order, size);
  if (order < 0) {
    return Status(StatusCode::kOutOfSpace, "allocation exceeds heap size");
  }
  const uint64_t node =
      FindFreeNode(1, h->heap_order, static_cast<size_t>(order));
  if (node == 0) {
    return Status(StatusCode::kOutOfSpace, "persistent pool exhausted");
  }
  uint8_t* state = TreeState();
  state[node] = kNodeUsed;
  PersistNode(node);
  const uint64_t block = 1ULL << order;
  h->used_bytes += block;
  h->live_objects++;
  PersistHeader();
  stats_.allocs++;
  stats_.used_bytes = h->used_bytes;
  stats_.live_objects = h->live_objects;
  ARTHAS_COUNTER_ADD("pool.alloc.count", 1);
  ARTHAS_GAUGE_SET("pool.used.bytes", h->used_bytes);
  ARTHAS_GAUGE_SET("pool.live.objects", h->live_objects);
  // Capacity plane: mirror cell (one live pool per system in every bench).
  ARTHAS_RESOURCE_SET("pmem.pool.used.bytes", "bytes", h->used_bytes);

  const PmOffset payload = NodeOffset(node, static_cast<size_t>(order));
  if (zero) {
    std::memset(device_->Live(payload), 0, block);
    device_->PersistQuiet(payload, block);
  }
  ARTHAS_FLIGHT_RECORD(obs::FrType::kAlloc, device_->device_id(), payload,
                       block, 0);
  for (PoolObserver* obs : observers_) {
    obs->OnAlloc(payload, block);
  }
  return Oid{payload};
}

Result<Oid> PmemPool::Alloc(size_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  return AllocInternal(size, false);
}
Result<Oid> PmemPool::Zalloc(size_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  return AllocInternal(size, true);
}

// Locates the used node whose block starts exactly at `offset`.
// Returns {node, order} or {0, 0}.
std::pair<uint64_t, size_t> PmemPool::FindUsedNode(PmOffset offset) const {
  const PoolHeader* h = header();
  if (offset < h->heap_base ||
      offset >= h->heap_base + (1ULL << h->heap_order)) {
    return {0, 0};
  }
  const uint8_t* state = TreeState();
  uint64_t node = 1;
  size_t order = h->heap_order;
  while (state[node] == kNodeSplit) {
    order--;
    const uint64_t mid = NodeOffset(2 * node + 1, order);
    node = offset < mid ? 2 * node : 2 * node + 1;
  }
  if (state[node] != kNodeUsed || NodeOffset(node, order) != offset) {
    return {0, 0};
  }
  return {node, order};
}

// Requires the pool mutex.
Status PmemPool::FreeLocked(Oid oid) {
  ARTHAS_SCOPED_LATENCY("pool.free.ns");
  if (oid.is_null()) {
    return InvalidArgument("free of null oid");
  }
  auto [node, order] = FindUsedNode(oid.off);
  if (node == 0) {
    return FailedPrecondition("free of a non-allocated address");
  }
  PoolHeader* h = header();
  uint8_t* state = TreeState();
  state[node] = kNodeFree;
  PersistNode(node);
  // Merge with the buddy while possible.
  uint64_t cur = node;
  while (cur > 1) {
    const uint64_t buddy = cur ^ 1ULL;
    if (state[buddy] != kNodeFree) {
      break;
    }
    const uint64_t parent = cur / 2;
    state[parent] = kNodeFree;
    PersistNode(parent);
    cur = parent;
  }
  const uint64_t block = 1ULL << order;
  h->used_bytes -= block;
  h->live_objects--;
  PersistHeader();
  stats_.frees++;
  stats_.used_bytes = h->used_bytes;
  stats_.live_objects = h->live_objects;
  ARTHAS_COUNTER_ADD("pool.free.count", 1);
  ARTHAS_GAUGE_SET("pool.used.bytes", h->used_bytes);
  ARTHAS_GAUGE_SET("pool.live.objects", h->live_objects);
  ARTHAS_RESOURCE_SET("pmem.pool.used.bytes", "bytes", h->used_bytes);
  ARTHAS_FLIGHT_RECORD(obs::FrType::kFree, device_->device_id(), oid.off,
                       block, 0);
  for (PoolObserver* obs : observers_) {
    obs->OnFree(oid.off, block);
  }
  return OkStatus();
}

Status PmemPool::Free(Oid oid) {
  std::lock_guard<std::mutex> lock(mutex_);
  return FreeLocked(oid);
}

Result<Oid> PmemPool::Realloc(Oid oid, size_t new_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (oid.is_null()) {
    return AllocInternal(new_size, false);
  }
  ARTHAS_ASSIGN_OR_RETURN(const size_t old_size, UsableSizeLocked(oid));
  if (new_size <= old_size) {
    return oid;  // fits in place
  }
  // Suppress the alloc/free observer events; realloc is reported as one
  // OnRealloc so the checkpoint log can link old and new entries.
  std::vector<PoolObserver*> saved;
  saved.swap(observers_);
  auto new_oid = AllocInternal(new_size, false);
  if (!new_oid.ok()) {
    observers_.swap(saved);
    return new_oid.status();
  }
  std::memcpy(device_->Live(new_oid->off), device_->Live(oid.off),
              std::min(old_size, new_size));
  device_->PersistQuiet(new_oid->off, std::min(old_size, new_size));
  Status freed = FreeLocked(oid);
  observers_.swap(saved);
  if (!freed.ok()) {
    return freed;
  }
  stats_.reallocs++;
  for (PoolObserver* obs : observers_) {
    obs->OnRealloc(oid.off, old_size, new_oid->off, new_size);
  }
  return *new_oid;
}

// Requires the pool mutex.
Result<size_t> PmemPool::UsableSizeLocked(Oid oid) const {
  if (oid.is_null()) {
    return Status(StatusCode::kInvalidArgument, "null oid");
  }
  auto [node, order] = FindUsedNode(oid.off);
  if (node == 0) {
    return Status(StatusCode::kCorruption, "usable_size: not an allocation");
  }
  return static_cast<size_t>(1ULL << order);
}

Result<size_t> PmemPool::UsableSize(Oid oid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return UsableSizeLocked(oid);
}

Oid PmemPool::OidOf(const void* p) const {
  const PmOffset off = device_->OffsetOf(p);
  return off == kNullPmOffset ? Oid::Null() : Oid{off};
}

Result<Oid> PmemPool::Root(size_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  PoolHeader* h = header();
  if (h->root_off != kNullPmOffset) {
    if (h->root_size < size) {
      return Status(StatusCode::kInvalidArgument,
                    "root exists with smaller size");
    }
    return Oid{h->root_off};
  }
  ARTHAS_ASSIGN_OR_RETURN(Oid root, AllocInternal(size, /*zero=*/true));
  h->root_off = root.off;
  h->root_size = size;
  PersistHeader();
  return root;
}

bool PmemPool::HasRoot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return header()->root_off != kNullPmOffset;
}

void PmemPool::Persist(Oid oid, size_t offset, size_t size) {
  assert(!oid.is_null());
  device_->Persist(oid.off + offset, size);
}

Status PmemPool::TxBegin(TxContext& ctx) {
  if (ctx.active) {
    return FailedPrecondition("nested transactions are not supported");
  }
  std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
  {
    ARTHAS_PROFILE(kLockWait);
    lock.lock();
  }
  ARTHAS_PROFILE(kBookkeeping);
  PoolHeader* h = header();
  int slot = -1;
  if (!slot_busy_[0]) {
    slot = 0;
  } else {
    for (int i = 1; i <= kExtraTxSlots; i++) {
      if (slot_busy_[i]) {
        continue;
      }
      // The chunk must sit above slot 0's already-written log bytes.
      if (ExtraTxSlotBase(i) < h->undo_off + h->tx_log_bytes) {
        break;  // lower-numbered slots have higher bases; none can fit
      }
      slot = i;
      break;
    }
  }
  if (slot < 0) {
    // Transient exhaustion, not a protocol violation: every undo slot is
    // held by a live transaction. Nothing was latched — the caller can
    // retry after any one of them commits or aborts.
    return Busy("all " + std::to_string(kMaxConcurrentTx) +
                " concurrent transaction slots are busy");
  }
  slot_busy_[slot] = true;
  const uint64_t tx_id = next_tx_id_++;
  if (slot == 0) {
    h->tx_active = 1;
    h->tx_log_count = 0;
    h->tx_log_bytes = 0;
    PersistHeader();
    ctx.undo_base = h->undo_off;
    ctx.undo_capacity = h->undo_capacity;  // re-bounded per TxAddRange
  } else {
    TxSlotDescriptor desc{kTxSlotActiveMagic, 0, 0};
    std::memcpy(device_->Live(TxSlotDescriptorOffset(slot)), &desc,
                sizeof(desc));
    PersistTxSlotDescriptor(slot);
    ctx.undo_base = ExtraTxSlotBase(slot);
    ctx.undo_capacity = ExtraTxChunkBytes();
  }
  ctx.active = true;
  ctx.tx_id = tx_id;
  ctx.slot = slot;
  ctx.log_count = 0;
  ctx.log_bytes = 0;
  {
    ARTHAS_PROFILE(kObsHook);
    ARTHAS_FLIGHT_RECORD(obs::FrType::kTxBegin, device_->device_id(),
                         static_cast<uint64_t>(slot), 0, tx_id);
  }
  for (PoolObserver* obs : observers_) {
    obs->OnTxBegin(tx_id);
  }
  return OkStatus();
}

Status PmemPool::TxAddRange(TxContext& ctx, PmOffset offset, size_t size) {
  if (!ctx.active) {
    return FailedPrecondition("tx_add_range outside transaction");
  }
  std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
  {
    ARTHAS_PROFILE(kLockWait);
    lock.lock();
  }
  ARTHAS_PROFILE(kBookkeeping);
  PoolHeader* h = header();
  const uint64_t capacity =
      ctx.slot == 0 ? Slot0CapacityLocked() : ctx.undo_capacity;
  const size_t need = sizeof(UndoEntryHeader) + AlignUp(size, 8);
  if (ctx.log_bytes + need > capacity) {
    return OutOfSpace("undo log full");
  }
  const PmOffset entry_off = ctx.undo_base + ctx.log_bytes;
  UndoEntryHeader eh{offset, size};
  std::memcpy(device_->Live(entry_off), &eh, sizeof(eh));
  std::memcpy(device_->Live(entry_off + sizeof(eh)), device_->Live(offset),
              size);
  device_->PersistQuiet(entry_off, sizeof(eh) + size);
  ctx.log_bytes += need;
  ctx.log_count++;
  if (ctx.slot == 0) {
    h->tx_log_bytes = ctx.log_bytes;
    h->tx_log_count = ctx.log_count;
    PersistHeader();
  } else {
    TxSlotDescriptor desc{kTxSlotActiveMagic, ctx.log_count, ctx.log_bytes};
    std::memcpy(device_->Live(TxSlotDescriptorOffset(ctx.slot)), &desc,
                sizeof(desc));
    PersistTxSlotDescriptor(ctx.slot);
  }
  {
    ARTHAS_PROFILE(kObsHook);
    ARTHAS_FLIGHT_RECORD(obs::FrType::kTxAddRange, device_->device_id(),
                         offset, size, ctx.tx_id);
  }
  return OkStatus();
}

Status PmemPool::TxAddRange(TxContext& ctx, Oid oid, size_t offset,
                            size_t size) {
  if (oid.is_null()) {
    return InvalidArgument("tx_add_range on null oid");
  }
  return TxAddRange(ctx, oid.off + offset, size);
}

Status PmemPool::TxCommit(TxContext& ctx) {
  ARTHAS_SCOPED_LATENCY("pool.tx_commit.ns");
  if (!ctx.active) {
    return FailedPrecondition("commit outside transaction");
  }
  ARTHAS_COUNTER_ADD("pool.tx_commit.count", 1);
  std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
  {
    ARTHAS_PROFILE(kLockWait);
    lock.lock();
  }
  ARTHAS_PROFILE(kBookkeeping);
  PoolHeader* h = header();
  // Make every range registered in this transaction durable, firing the
  // durability observers (which is where the Arthas checkpoint library
  // copies the committed data, per paper Section 4.2).
  PmOffset cursor = ctx.undo_base;
  for (uint64_t i = 0; i < ctx.log_count; i++) {
    UndoEntryHeader eh;
    std::memcpy(&eh, device_->Live(cursor), sizeof(eh));
    device_->Persist(eh.offset, eh.size);
    cursor += sizeof(UndoEntryHeader) + AlignUp(eh.size, 8);
  }
  if (ctx.slot == 0) {
    h->tx_active = 0;
    h->tx_log_count = 0;
    h->tx_log_bytes = 0;
    PersistHeader();
  } else {
    TxSlotDescriptor desc{};
    std::memcpy(device_->Live(TxSlotDescriptorOffset(ctx.slot)), &desc,
                sizeof(desc));
    PersistTxSlotDescriptor(ctx.slot);
  }
  slot_busy_[ctx.slot] = false;
  const uint64_t tx_id = ctx.tx_id;
  ctx = TxContext{};
  {
    ARTHAS_PROFILE(kObsHook);
    ARTHAS_FLIGHT_RECORD(obs::FrType::kTxCommit, device_->device_id(), 0, 0,
                         tx_id);
  }
  for (PoolObserver* obs : observers_) {
    obs->OnTxCommit(tx_id);
  }
  return OkStatus();
}

Status PmemPool::TxAbort(TxContext& ctx) {
  ARTHAS_SCOPED_LATENCY("pool.tx_abort.ns");
  if (!ctx.active) {
    return FailedPrecondition("abort outside transaction");
  }
  ARTHAS_COUNTER_ADD("pool.tx_abort.count", 1);
  std::lock_guard<std::mutex> lock(mutex_);
  PoolHeader* h = header();
  RollbackUndoLog(ctx.undo_base, ctx.log_count);
  if (ctx.slot == 0) {
    h->tx_active = 0;
    h->tx_log_count = 0;
    h->tx_log_bytes = 0;
    PersistHeader();
  } else {
    TxSlotDescriptor desc{};
    std::memcpy(device_->Live(TxSlotDescriptorOffset(ctx.slot)), &desc,
                sizeof(desc));
    PersistTxSlotDescriptor(ctx.slot);
  }
  slot_busy_[ctx.slot] = false;
  ARTHAS_FLIGHT_RECORD(obs::FrType::kTxAbort, device_->device_id(), 0, 0,
                       ctx.tx_id);
  ctx = TxContext{};
  return OkStatus();
}

void PmemPool::WalkTree(
    uint64_t node, size_t node_order,
    const std::function<void(PmOffset, size_t, bool)>& fn) const {
  const uint8_t* state = TreeState();
  if (state[node] == kNodeSplit) {
    WalkTree(2 * node, node_order - 1, fn);
    WalkTree(2 * node + 1, node_order - 1, fn);
    return;
  }
  fn(NodeOffset(node, node_order), 1ULL << node_order,
     state[node] == kNodeUsed);
}

void PmemPool::ForEachBlock(
    const std::function<void(PmOffset, size_t, bool)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  WalkTree(1, header()->heap_order, fn);
}

Status PmemPool::CheckIntegrity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const PoolHeader* h = header();
  if (h->magic != kPoolMagic) {
    return Corruption("pool header magic mismatch");
  }
  PoolHeader copy;
  std::memcpy(&copy, h, sizeof(copy));
  const uint32_t stored = copy.crc;
  copy.crc = 0;
  if (Crc32c(&copy, sizeof(copy)) != stored) {
    return Corruption("pool header checksum mismatch");
  }
  // Validate the buddy state array and the usage accounting.
  const uint8_t* state = TreeState();
  uint64_t used = 0;
  uint64_t live = 0;
  // Iterative DFS over split nodes.
  std::vector<std::pair<uint64_t, size_t>> stack = {{1, h->heap_order}};
  while (!stack.empty()) {
    auto [node, order] = stack.back();
    stack.pop_back();
    if (state[node] > kNodeUsed) {
      return Corruption("invalid buddy node state");
    }
    if (state[node] == kNodeSplit) {
      if (order == kMinOrder) {
        return Corruption("split below minimum order");
      }
      stack.push_back({2 * node, order - 1});
      stack.push_back({2 * node + 1, order - 1});
      continue;
    }
    if (state[node] == kNodeUsed) {
      used += 1ULL << order;
      live++;
    }
  }
  if (used != h->used_bytes || live != h->live_objects) {
    return Corruption("heap accounting mismatch");
  }
  return OkStatus();
}

std::vector<std::pair<PmOffset, size_t>> PmemPool::MetadataRangesIn(
    PmOffset offset, size_t size) const {
  // All allocator metadata lives below heap_base (pool header, undo log,
  // buddy state array); the object heap contains only payloads. heap_base
  // is immutable after Format, so this is deliberately lock-free: the
  // checkpoint log calls it from reversion paths that may hold its shard
  // locks, and taking the pool mutex there would invert the lock order.
  std::vector<std::pair<PmOffset, size_t>> ranges;
  const PoolHeader* h = header();
  if (offset < h->heap_base) {
    const PmOffset end = std::min<PmOffset>(offset + size, h->heap_base);
    ranges.push_back({offset, end - offset});
  }
  return ranges;
}

size_t PmemPool::Capacity() const { return 1ULL << header()->heap_order; }

size_t PmemPool::FreeBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const PoolHeader* h = header();
  const uint64_t heap = 1ULL << h->heap_order;
  return h->used_bytes >= heap ? 0 : heap - h->used_bytes;
}

void PmemPool::CoalesceFreeBlocks() {}  // buddy merging happens on free

void PmemPool::AddObserver(PoolObserver* observer) {
  observers_.push_back(observer);
}

void PmemPool::RemoveObserver(PoolObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

}  // namespace arthas
