// RAII transaction guard for PmemPool.
//
// Mirrors the TX_BEGIN/TX_END usage pattern of libpmemobj: a PmemTx opened
// on a pool begins an undo-log transaction; Commit() makes all added ranges
// durable; destruction without Commit() aborts (restores the old contents).

#ifndef ARTHAS_PMEM_TX_H_
#define ARTHAS_PMEM_TX_H_

#include "common/status.h"
#include "pmem/pool.h"

namespace arthas {

class PmemTx {
 public:
  // Begins a transaction. Check `status()` before use: begin fails if a
  // transaction is already open on the pool.
  explicit PmemTx(PmemPool& pool) : pool_(pool), status_(pool.TxBegin()) {}

  ~PmemTx() {
    if (status_.ok() && !finished_) {
      (void)pool_.TxAbort();
    }
  }

  PmemTx(const PmemTx&) = delete;
  PmemTx& operator=(const PmemTx&) = delete;

  const Status& status() const { return status_; }

  // Snapshots [oid+offset, +size) into the undo log before modification.
  Status AddRange(Oid oid, size_t offset, size_t size) {
    return pool_.TxAddRange(oid, offset, size);
  }
  Status AddRange(PmOffset offset, size_t size) {
    return pool_.TxAddRange(offset, size);
  }
  // Snapshot an entire object.
  template <typename T>
  Status Add(Oid oid) {
    return pool_.TxAddRange(oid, 0, sizeof(T));
  }

  Status Commit() {
    finished_ = true;
    return pool_.TxCommit();
  }

  Status Abort() {
    finished_ = true;
    return pool_.TxAbort();
  }

 private:
  PmemPool& pool_;
  Status status_;
  bool finished_ = false;
};

}  // namespace arthas

#endif  // ARTHAS_PMEM_TX_H_
