// Typed persistent object helpers over PmemPool — the ergonomic layer of
// libpmemobj (pmem::obj::persistent_ptr / p<> in PMDK's C++ bindings).
//
// PersistentPtr<T> is a typed, crash-stable handle (an Oid remembered with
// its type); PersistentVar<T> wraps a field with assign-and-persist
// semantics so call sites read like ordinary code while every committed
// store is a proper durability point (and therefore checkpointed by an
// attached Arthas CheckpointLog).

#ifndef ARTHAS_PMEM_PERSISTENT_H_
#define ARTHAS_PMEM_PERSISTENT_H_

#include <type_traits>
#include <utility>

#include "pmem/pool.h"

namespace arthas {

// A typed persistent pointer. Trivially copyable; the pointee lives in the
// pool and survives crashes, the handle itself is a value you may keep in
// DRAM or embed (as an Oid) inside other persistent objects.
template <typename T>
class PersistentPtr {
  static_assert(std::is_trivially_copyable_v<T>,
                "persistent objects must be trivially copyable");

 public:
  PersistentPtr() = default;
  explicit PersistentPtr(Oid oid) : oid_(oid) {}

  // Allocates a zero-initialized T in the pool.
  static Result<PersistentPtr<T>> Make(PmemPool& pool) {
    ARTHAS_ASSIGN_OR_RETURN(Oid oid, pool.Zalloc(sizeof(T)));
    return PersistentPtr<T>(oid);
  }

  bool is_null() const { return oid_.is_null(); }
  Oid oid() const { return oid_; }

  T* get(PmemPool& pool) const { return pool.Direct<T>(oid_); }

  // Persists the whole object (a durability point).
  void Persist(PmemPool& pool) const { pool.Persist(oid_, 0, sizeof(T)); }

  // Persists one member, given its pointer-to-member.
  template <typename M>
  void PersistMember(PmemPool& pool, M T::* member) const {
    T* obj = get(pool);
    const auto offset = reinterpret_cast<const char*>(&(obj->*member)) -
                        reinterpret_cast<const char*>(obj);
    pool.Persist(oid_, static_cast<size_t>(offset), sizeof(M));
  }

  Status Free(PmemPool& pool) {
    Status status = pool.Free(oid_);
    if (status.ok()) {
      oid_ = Oid::Null();
    }
    return status;
  }

  bool operator==(const PersistentPtr& other) const {
    return oid_ == other.oid_;
  }

 private:
  Oid oid_;
};

// A persistent variable bound to a pool: assignment writes and persists in
// one step. Useful for roots and standalone counters/flags.
template <typename T>
class PersistentVar {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  // Binds to (allocating on first use) the pool's root object.
  static Result<PersistentVar<T>> Root(PmemPool& pool) {
    ARTHAS_ASSIGN_OR_RETURN(Oid oid, pool.Root(sizeof(T)));
    return PersistentVar<T>(pool, oid);
  }

  static Result<PersistentVar<T>> Make(PmemPool& pool) {
    ARTHAS_ASSIGN_OR_RETURN(Oid oid, pool.Zalloc(sizeof(T)));
    return PersistentVar<T>(pool, oid);
  }

  PersistentVar(PmemPool& pool, Oid oid) : pool_(&pool), oid_(oid) {}

  const T& value() const { return *pool_->Direct<T>(oid_); }
  operator const T&() const { return value(); }

  // Assign-and-persist: the store reaches durability (and the checkpoint
  // log) before the call returns.
  PersistentVar& operator=(const T& v) {
    *pool_->Direct<T>(oid_) = v;
    pool_->Persist(oid_, 0, sizeof(T));
    return *this;
  }

  // In-place update under a lambda, persisted once at the end.
  template <typename Fn>
  void Update(Fn&& fn) {
    fn(*pool_->Direct<T>(oid_));
    pool_->Persist(oid_, 0, sizeof(T));
  }

  Oid oid() const { return oid_; }

 private:
  PmemPool* pool_;
  Oid oid_;
};

}  // namespace arthas

#endif  // ARTHAS_PMEM_PERSISTENT_H_
