#include "workload/zipfian.h"

#include <cmath>

namespace arthas {

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfianGenerator::NextForUniform(double u) const {
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const uint64_t key = static_cast<uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  // As u -> 1.0 the quick-method expression reaches n_ exactly (the pow
  // factor rounds to 1.0), which is one past the key space [0, n); clamp to
  // the last valid key.
  return key >= n_ ? n_ - 1 : key;
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  return NextForUniform(rng.NextDouble());
}

}  // namespace arthas
