// Zipfian key-popularity sampler (Gray et al. quick method, as used by
// YCSB). Deterministic given the caller's Rng.

#ifndef ARTHAS_WORKLOAD_ZIPFIAN_H_
#define ARTHAS_WORKLOAD_ZIPFIAN_H_

#include <cstdint>

#include "common/rng.h"

namespace arthas {

class ZipfianGenerator {
 public:
  // Samples from [0, n) with skew theta (0 < theta < 1; YCSB default 0.99).
  ZipfianGenerator(uint64_t n, double theta = 0.99);

  uint64_t Next(Rng& rng);

  // The sampling function on a caller-supplied uniform draw u in [0, 1).
  // Exposed so tests can force edge draws (u -> 1.0) without fishing for an
  // Rng state that produces them; Next(rng) is exactly
  // NextForUniform(rng.NextDouble()).
  uint64_t NextForUniform(double u) const;

  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace arthas

#endif  // ARTHAS_WORKLOAD_ZIPFIAN_H_
