#include "workload/ycsb.h"

namespace arthas {

YcsbWorkload::YcsbWorkload(YcsbConfig config, uint64_t seed)
    : config_(config),
      rng_(seed),
      zipf_(config.key_space, config.zipfian_theta) {}

std::string YcsbWorkload::KeyAt(uint64_t i) const {
  return config_.key_prefix + std::to_string(i);
}

Request YcsbWorkload::Next() {
  Request request;
  const uint64_t record = config_.uniform
                              ? rng_.NextBelow(config_.key_space)
                              : zipf_.Next(rng_);
  request.key = KeyAt(record);
  if (rng_.NextDouble() < config_.read_fraction) {
    request.op = Request::Op::kGet;
  } else {
    request.op = Request::Op::kPut;
    request.value.assign(config_.value_size,
                         static_cast<char>('a' + record % 26));
  }
  return request;
}

Request InsertWorkload::Next() {
  Request request;
  request.op = Request::Op::kPut;
  request.key = prefix_ + std::to_string(next_id_++);
  request.value.assign(value_size_, static_cast<char>('a' + next_id_ % 26));
  return request;
}

}  // namespace arthas
