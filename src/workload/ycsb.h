// YCSB-style workload generator (paper Section 6.7 uses YCSB with a 50/50
// read/write mix for Redis and Memcached, plus custom insert workloads for
// PMEMKV, Pelikan, and CCEH).

#ifndef ARTHAS_WORKLOAD_YCSB_H_
#define ARTHAS_WORKLOAD_YCSB_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "systems/pm_system.h"
#include "workload/zipfian.h"

namespace arthas {

struct YcsbConfig {
  uint64_t key_space = 1000;
  double read_fraction = 0.5;
  size_t value_size = 16;
  double zipfian_theta = 0.99;
  bool uniform = false;  // uniform key choice instead of zipfian
  std::string key_prefix = "user";
};

class YcsbWorkload {
 public:
  YcsbWorkload(YcsbConfig config, uint64_t seed);

  // The next operation in the stream.
  Request Next();

  // Key for logical record i.
  std::string KeyAt(uint64_t i) const;

  const YcsbConfig& config() const { return config_; }
  Rng& rng() { return rng_; }

 private:
  YcsbConfig config_;
  Rng rng_;
  ZipfianGenerator zipf_;
};

// Custom pure-insert workload (unique keys).
class InsertWorkload {
 public:
  InsertWorkload(std::string prefix, size_t value_size, uint64_t seed)
      : prefix_(std::move(prefix)), value_size_(value_size), rng_(seed) {}

  Request Next();
  uint64_t issued() const { return next_id_; }

 private:
  std::string prefix_;
  size_t value_size_;
  Rng rng_;
  uint64_t next_id_ = 0;
};

}  // namespace arthas

#endif  // ARTHAS_WORKLOAD_YCSB_H_
