// Inter-procedural Program Dependence Graph (paper Section 4.1, step 2).
//
// Nodes are IR instructions plus function arguments. Edge kinds:
//   * data       — SSA def-use (an instruction uses another's result),
//   * memory     — a store may feed a load (pointer operands may alias),
//   * control    — instruction executes only if a branch goes a certain way,
//   * call       — actual argument flows to formal parameter; return value
//                  flows back to the call site (direct and indirect calls).
//
// The PDG is the static metadata the Arthas reactor consumes; as in the
// paper it is computed once per program version and reused.

#ifndef ARTHAS_ANALYSIS_PDG_H_
#define ARTHAS_ANALYSIS_PDG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/pointer_analysis.h"
#include "ir/ir.h"

namespace arthas {

enum class PdgEdgeKind { kData, kMemory, kControl, kCall };

struct PdgStats {
  size_t nodes = 0;
  size_t edges = 0;
  int64_t build_ns = 0;
};

class Pdg {
 public:
  // Builds the PDG. `pa` must already have Run() on the same module.
  Pdg(const IrModule& module, const PointerAnalysis& pa);

  struct Edge {
    const IrValue* to;
    PdgEdgeKind kind;
  };

  // Outgoing dependence edges (from definition/controller to dependent).
  const std::vector<Edge>& Successors(const IrValue* node) const;
  // Incoming edges (what `node` depends on).
  const std::vector<Edge>& Predecessors(const IrValue* node) const;

  const PdgStats& stats() const { return stats_; }

  std::string DebugString() const;

 private:
  void AddEdge(const IrValue* from, const IrValue* to, PdgEdgeKind kind);

  std::map<const IrValue*, std::vector<Edge>> succ_;
  std::map<const IrValue*, std::vector<Edge>> pred_;
  std::vector<Edge> empty_;
  PdgStats stats_;
};

}  // namespace arthas

#endif  // ARTHAS_ANALYSIS_PDG_H_
