// Post-dominator tree and control-dependence computation (per function).
//
// Control dependence follows Ferrante, Ottenstein & Warren ("The program
// dependence graph and its use in optimization", TOPLAS '87, the paper's
// reference [32]): block B is control dependent on block A iff there is an
// edge A -> S such that B post-dominates S but B does not strictly
// post-dominate A.

#ifndef ARTHAS_ANALYSIS_DOMINATORS_H_
#define ARTHAS_ANALYSIS_DOMINATORS_H_

#include <map>
#include <vector>

#include "ir/ir.h"

namespace arthas {

// Post-dominance relation for one function, computed on the reverse CFG
// augmented with a virtual exit node that every kRet block reaches.
class PostDominators {
 public:
  explicit PostDominators(const IrFunction& function);

  // True if `a` post-dominates `b` (reflexive).
  bool PostDominates(const IrBasicBlock* a, const IrBasicBlock* b) const;

  // Immediate post-dominator; nullptr for blocks whose ipdom is the virtual
  // exit.
  const IrBasicBlock* ImmediatePostDominator(const IrBasicBlock* b) const;

 private:
  int IndexOf(const IrBasicBlock* b) const;

  std::vector<const IrBasicBlock*> blocks_;
  std::map<const IrBasicBlock*, int> index_;
  // ipdom_[i] is the block index of the immediate post-dominator, or
  // kVirtualExit.
  std::vector<int> ipdom_;
  static constexpr int kVirtualExit = -1;
  static constexpr int kUnreachable = -2;
};

// Map from a block to the set of blocks whose terminator it is control
// dependent on.
using ControlDependenceMap =
    std::map<const IrBasicBlock*, std::vector<const IrBasicBlock*>>;

ControlDependenceMap ComputeControlDependence(const IrFunction& function);

}  // namespace arthas

#endif  // ARTHAS_ANALYSIS_DOMINATORS_H_
