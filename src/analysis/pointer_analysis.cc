#include "analysis/pointer_analysis.h"

#include <algorithm>

#include "common/clock.h"

namespace arthas {

PointerAnalysis::PointerAnalysis(const IrModule& module) : module_(module) {}

bool PointerAnalysis::Union(PtsSet& dst, const PtsSet& src) {
  const size_t before = dst.size();
  dst.insert(src.begin(), src.end());
  return dst.size() != before;
}

void PointerAnalysis::Run() {
  const int64_t start = MonotonicNanos();
  // Base constraints: allocation sites, globals, and function addresses.
  for (const auto& g : module_.globals()) {
    PtsOf(g.get()).insert({g.get(), 0});
  }
  for (const auto& f : module_.functions()) {
    PtsOf(f.get()).insert({f.get(), 0});
  }
  for (const IrInstruction* inst : module_.AllInstructions()) {
    switch (inst->opcode()) {
      case IrOpcode::kAlloca:
      case IrOpcode::kPmAlloc:
      case IrOpcode::kPmMapFile:
        PtsOf(inst).insert({inst, 0});
        stats_.constraints++;
        break;
      default:
        break;
    }
  }
  // Fixpoint over the complex rules.
  bool changed = true;
  while (changed) {
    changed = ApplyAllConstraints();
    stats_.solve_iterations++;
  }
  stats_.elapsed_ns = MonotonicNanos() - start;
}

bool PointerAnalysis::ApplyAllConstraints() {
  bool changed = false;
  for (const IrInstruction* inst : module_.AllInstructions()) {
    changed |= ApplyInstruction(inst);
  }
  return changed;
}

bool PointerAnalysis::BindCall(const IrInstruction* call,
                               const IrFunction* callee, int actual_base) {
  bool changed = false;
  // Bind actuals to formals.
  const auto& operands = call->operands();
  for (size_t i = 0; i + actual_base < operands.size() &&
                     i < callee->args().size();
       i++) {
    const IrValue* actual = operands[i + actual_base];
    changed |= Union(PtsOf(callee->args()[i].get()), PtsOf(actual));
  }
  // Bind returned values to the call result.
  for (const IrInstruction* ret : callee->ReturnSites()) {
    if (!ret->operands().empty()) {
      changed |= Union(PtsOf(call), PtsOf(ret->operands()[0]));
    }
  }
  return changed;
}

bool PointerAnalysis::ApplyInstruction(const IrInstruction* inst) {
  bool changed = false;
  const auto& ops = inst->operands();
  switch (inst->opcode()) {
    case IrOpcode::kLoad: {
      // p = *q: contents of every object q may point to flow into p. A
      // field-exact load also reads the wildcard slot (something may have
      // stored through a byte cursor); a wildcard load reads every field.
      for (const AbstractObject& o : PtsOf(ops[0])) {
        changed |= Union(PtsOf(inst), ContentsOf(o));
        if (o.field == AbstractObject::kAnyField) {
          for (auto& [obj, contents] : contents_) {
            if (obj.site == o.site) {
              changed |= Union(PtsOf(inst), contents);
            }
          }
        } else {
          changed |= Union(PtsOf(inst),
                           ContentsOf({o.site, AbstractObject::kAnyField}));
        }
      }
      break;
    }
    case IrOpcode::kStore: {
      // *q = v.
      for (const AbstractObject& o : PtsOf(ops[1])) {
        changed |= Union(ContentsOf(o), PtsOf(ops[0]));
      }
      break;
    }
    case IrOpcode::kFieldAddr: {
      // p = &q->f: re-derive with the field index, preserving the site.
      PtsSet derived;
      for (const AbstractObject& o : PtsOf(ops[0])) {
        derived.insert({o.site, inst->field_index()});
      }
      changed |= Union(PtsOf(inst), derived);
      break;
    }
    case IrOpcode::kIndexAddr: {
      // A byte-offset / array-element cursor: field-unknown, so it may
      // alias any field of the base's sites.
      PtsSet derived;
      for (const AbstractObject& o : PtsOf(ops[0])) {
        derived.insert({o.site, AbstractObject::kAnyField});
      }
      changed |= Union(PtsOf(inst), derived);
      break;
    }
    case IrOpcode::kPhi:
    case IrOpcode::kBinOp: {
      // Pointer arithmetic and SSA merges propagate all inputs.
      for (const IrValue* op : ops) {
        changed |= Union(PtsOf(inst), PtsOf(op));
      }
      break;
    }
    case IrOpcode::kCall: {
      if (inst->callee() != nullptr) {
        changed |= BindCall(inst, inst->callee(), 0);
      } else if (!ops.empty()) {
        // Indirect: resolve targets from the function pointer.
        for (const AbstractObject& o : PtsOf(ops[0])) {
          if (o.site != nullptr &&
              o.site->kind() == IrValue::Kind::kFunction) {
            changed |= BindCall(
                inst, static_cast<const IrFunction*>(o.site), 1);
          }
        }
      }
      break;
    }
    default:
      break;
  }
  return changed;
}

const std::set<AbstractObject>& PointerAnalysis::PointsTo(
    const IrValue* v) const {
  auto it = pts_.find(v);
  return it == pts_.end() ? empty_ : it->second;
}

bool PointerAnalysis::MayAlias(const IrValue* v1, const IrValue* v2) const {
  if (v1 == v2) {
    return true;
  }
  const auto& s1 = PointsTo(v1);
  const auto& s2 = PointsTo(v2);
  if (s1.empty() || s2.empty()) {
    return false;
  }
  for (const AbstractObject& a : s1) {
    for (const AbstractObject& b : s2) {
      if (a.site != b.site) {
        continue;
      }
      if (a.field == b.field || a.field == AbstractObject::kAnyField ||
          b.field == AbstractObject::kAnyField) {
        return true;
      }
    }
  }
  return false;
}

std::vector<const IrFunction*> PointerAnalysis::ResolveIndirect(
    const IrValue* fn_ptr) const {
  std::vector<const IrFunction*> targets;
  for (const AbstractObject& o : PointsTo(fn_ptr)) {
    if (o.site != nullptr && o.site->kind() == IrValue::Kind::kFunction) {
      targets.push_back(static_cast<const IrFunction*>(o.site));
    }
  }
  return targets;
}

bool PointerAnalysis::IsPmSite(const IrValue* site) {
  if (site == nullptr || site->kind() != IrValue::Kind::kInstruction) {
    return false;
  }
  const auto* inst = static_cast<const IrInstruction*>(site);
  return inst->opcode() == IrOpcode::kPmAlloc ||
         inst->opcode() == IrOpcode::kPmMapFile;
}

bool PointerAnalysis::PointsToPm(const IrValue* v) const {
  for (const AbstractObject& o : PointsTo(v)) {
    if (IsPmSite(o.site)) {
      return true;
    }
  }
  return false;
}

}  // namespace arthas
