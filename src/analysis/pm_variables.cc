#include "analysis/pm_variables.h"

#include <deque>

namespace arthas {

PmVariableInfo::PmVariableInfo(const IrModule& module,
                               const PointerAnalysis& pa) {
  // Seed: results of PM API calls, plus anything whose points-to set
  // contains a PM allocation site (covers pointers passed across functions
  // and stored/reloaded through memory).
  std::deque<const IrValue*> worklist;
  auto add = [&](const IrValue* v) {
    if (pm_values_.insert(v).second) {
      worklist.push_back(v);
    }
  };

  for (const IrInstruction* inst : module.AllInstructions()) {
    if (inst->opcode() == IrOpcode::kPmAlloc ||
        inst->opcode() == IrOpcode::kPmMapFile) {
      add(inst);
    }
  }
  for (const IrInstruction* inst : module.AllInstructions()) {
    if (pa.PointsToPm(inst)) {
      add(inst);
    }
  }
  for (const auto& f : module.functions()) {
    for (const auto& arg : f->args()) {
      if (pa.PointsToPm(arg.get())) {
        add(arg.get());
      }
    }
  }

  // Def-use closure: any value computed from a PM value is PM-derived
  // (e.g. fptr = ptr + 10 after pmem_map_file).
  while (!worklist.empty()) {
    const IrValue* v = worklist.front();
    worklist.pop_front();
    for (const IrInstruction* user : v->users()) {
      switch (user->opcode()) {
        case IrOpcode::kFieldAddr:
        case IrOpcode::kIndexAddr:
        case IrOpcode::kBinOp:
        case IrOpcode::kPhi:
          add(user);
          break;
        default:
          break;
      }
    }
  }

  // Collect instructions creating or accessing PM values.
  for (const IrInstruction* inst : module.AllInstructions()) {
    bool touches_pm = pm_values_.count(inst) != 0;
    for (const IrValue* op : inst->operands()) {
      touches_pm = touches_pm || pm_values_.count(op) != 0;
    }
    if (!touches_pm) {
      continue;
    }
    pm_instructions_.push_back(inst);
    pm_instruction_set_.insert(inst);
    switch (inst->opcode()) {
      case IrOpcode::kStore:
        // A PM write only if the *pointer* operand is a PM value.
        if (pm_values_.count(inst->operands()[1]) != 0) {
          pm_writes_.push_back(inst);
        }
        break;
      case IrOpcode::kPmAlloc:
      case IrOpcode::kPmPersist:
      case IrOpcode::kPmFree:
        pm_writes_.push_back(inst);
        break;
      default:
        break;
    }
  }
}

}  // namespace arthas
