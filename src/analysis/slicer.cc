#include "analysis/slicer.h"

#include <deque>

#include "common/clock.h"

namespace arthas {

SliceResult Slicer::Walk(const IrInstruction* criterion, bool backward,
                         bool persistent_only) const {
  const int64_t start = MonotonicNanos();
  SliceResult result;
  std::set<const IrValue*> visited;
  std::deque<const IrValue*> queue;
  queue.push_back(criterion);
  visited.insert(criterion);
  while (!queue.empty()) {
    const IrValue* node = queue.front();
    queue.pop_front();
    if (node->kind() == IrValue::Kind::kInstruction) {
      const auto* inst = static_cast<const IrInstruction*>(node);
      if (!persistent_only || inst == criterion ||
          pm_info_.IsPmInstruction(inst)) {
        result.instructions.push_back(inst);
      }
    }
    const auto& edges =
        backward ? pdg_.Predecessors(node) : pdg_.Successors(node);
    for (const Pdg::Edge& e : edges) {
      if (visited.insert(e.to).second) {
        queue.push_back(e.to);
      }
    }
  }
  result.elapsed_ns = MonotonicNanos() - start;
  return result;
}

SliceResult Slicer::Backward(const IrInstruction* criterion) const {
  return Walk(criterion, /*backward=*/true, /*persistent_only=*/false);
}

SliceResult Slicer::Forward(const IrInstruction* criterion) const {
  return Walk(criterion, /*backward=*/false, /*persistent_only=*/false);
}

SliceResult Slicer::BackwardPersistent(const IrInstruction* criterion) const {
  return Walk(criterion, /*backward=*/true, /*persistent_only=*/true);
}

SliceResult Slicer::ForwardPersistent(const IrInstruction* criterion) const {
  return Walk(criterion, /*backward=*/false, /*persistent_only=*/true);
}

}  // namespace arthas
