// Inclusion-based (Andersen-style) pointer analysis over the mini-IR.
//
// The paper's analyzer uses field-sensitive, context-sensitive alias
// analysis (Wilson & Lam, reference [64]) to follow persistent pointers
// across functions. We implement the inclusion-based core with field
// sensitivity at struct-field granularity: an abstract object is an
// (allocation site, field index) pair, so distinct fields of the same
// persistent struct do not alias. The analysis is flow- and
// context-insensitive, inter-procedural, and resolves indirect calls from
// the points-to sets of function pointers (which also feeds the call graph
// used by the PDG).

#ifndef ARTHAS_ANALYSIS_POINTER_ANALYSIS_H_
#define ARTHAS_ANALYSIS_POINTER_ANALYSIS_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "ir/ir.h"

namespace arthas {

// An abstract memory object: an allocation site (alloca, pm.alloc,
// pm.map_file, global storage, or a function body) plus a field index.
// kAnyField marks byte-offset-derived pointers (kIndexAddr), which must
// conservatively alias every field of the site — this is what lets the
// analysis see that an overrunning memcpy through a length-computed cursor
// can clobber a neighboring header (the f4/f10 bug shape).
struct AbstractObject {
  const IrValue* site = nullptr;
  int field = 0;

  static constexpr int kAnyField = -1;

  auto operator<=>(const AbstractObject&) const = default;
};

struct PointerAnalysisStats {
  int64_t solve_iterations = 0;
  int64_t constraints = 0;
  int64_t elapsed_ns = 0;
};

class PointerAnalysis {
 public:
  explicit PointerAnalysis(const IrModule& module);

  // Solves the constraint system to a fixpoint.
  void Run();

  // Points-to set of an IR value.
  const std::set<AbstractObject>& PointsTo(const IrValue* v) const;

  // May v1 and v2 refer to the same memory? (Identical values always may.)
  bool MayAlias(const IrValue* v1, const IrValue* v2) const;

  // Functions an indirect call through `fn_ptr` may target.
  std::vector<const IrFunction*> ResolveIndirect(const IrValue* fn_ptr) const;

  // True if `site` is a PM allocation site (pm.alloc / pm.map_file).
  static bool IsPmSite(const IrValue* site);

  // Does the value possibly point into persistent memory?
  bool PointsToPm(const IrValue* v) const;

  const PointerAnalysisStats& stats() const { return stats_; }

 private:
  using PtsSet = std::set<AbstractObject>;

  PtsSet& PtsOf(const IrValue* v) { return pts_[v]; }
  PtsSet& ContentsOf(const AbstractObject& o) { return contents_[o]; }
  // Merges src into dst; returns true if dst grew.
  static bool Union(PtsSet& dst, const PtsSet& src);

  // One pass over all instructions applying transfer rules; returns true if
  // any set changed.
  bool ApplyAllConstraints();
  bool ApplyInstruction(const IrInstruction* inst);
  bool BindCall(const IrInstruction* call, const IrFunction* callee,
                int actual_base);

  const IrModule& module_;
  std::map<const IrValue*, PtsSet> pts_;
  std::map<AbstractObject, PtsSet> contents_;
  PointerAnalysisStats stats_;
  PtsSet empty_;
};

}  // namespace arthas

#endif  // ARTHAS_ANALYSIS_POINTER_ANALYSIS_H_
