#include "analysis/pdg.h"

#include <sstream>

#include "analysis/dominators.h"
#include "common/clock.h"

namespace arthas {

Pdg::Pdg(const IrModule& module, const PointerAnalysis& pa) {
  const int64_t start = MonotonicNanos();

  const std::vector<IrInstruction*> all = module.AllInstructions();

  // Data dependence: operand def-use.
  for (const IrInstruction* inst : all) {
    for (const IrValue* op : inst->operands()) {
      if (op->kind() == IrValue::Kind::kInstruction ||
          op->kind() == IrValue::Kind::kArgument ||
          op->kind() == IrValue::Kind::kGlobal) {
        AddEdge(op, inst, PdgEdgeKind::kData);
      }
    }
  }

  // Memory dependence: store -> load through may-aliasing pointers. This is
  // inter-procedural because the pointer analysis is whole-module.
  std::vector<const IrInstruction*> stores;
  std::vector<const IrInstruction*> loads;
  for (const IrInstruction* inst : all) {
    if (inst->opcode() == IrOpcode::kStore) {
      stores.push_back(inst);
    } else if (inst->opcode() == IrOpcode::kLoad) {
      loads.push_back(inst);
    }
  }
  for (const IrInstruction* s : stores) {
    for (const IrInstruction* l : loads) {
      if (pa.MayAlias(s->operands()[1], l->operands()[0])) {
        AddEdge(s, l, PdgEdgeKind::kMemory);
      }
    }
  }

  // Control dependence: terminator of the controlling block -> every
  // instruction of the dependent block.
  for (const auto& f : module.functions()) {
    if (f->blocks().empty()) {
      continue;
    }
    const ControlDependenceMap deps = ComputeControlDependence(*f);
    for (const auto& [block, controllers] : deps) {
      for (const IrBasicBlock* controller : controllers) {
        const IrInstruction* term = controller->terminator();
        if (term == nullptr) {
          continue;
        }
        for (const auto& inst : block->instructions()) {
          AddEdge(term, inst.get(), PdgEdgeKind::kControl);
        }
      }
    }
  }

  // Call binding: actual -> formal, return -> call result.
  for (const IrInstruction* inst : all) {
    if (inst->opcode() != IrOpcode::kCall) {
      continue;
    }
    std::vector<const IrFunction*> targets;
    int actual_base = 0;
    if (inst->callee() != nullptr) {
      targets.push_back(inst->callee());
    } else if (!inst->operands().empty()) {
      targets = pa.ResolveIndirect(inst->operands()[0]);
      actual_base = 1;
    }
    for (const IrFunction* callee : targets) {
      const auto& ops = inst->operands();
      for (size_t i = 0;
           i + actual_base < ops.size() && i < callee->args().size(); i++) {
        const IrValue* actual = ops[i + actual_base];
        if (actual->kind() != IrValue::Kind::kConstant) {
          AddEdge(actual, callee->args()[i].get(), PdgEdgeKind::kCall);
        }
        // The formal depends on the call site executing at all.
        AddEdge(inst, callee->args()[i].get(), PdgEdgeKind::kCall);
      }
      for (const IrInstruction* ret : callee->ReturnSites()) {
        if (!ret->operands().empty()) {
          AddEdge(ret->operands()[0], inst, PdgEdgeKind::kCall);
        }
      }
    }
  }

  stats_.nodes = succ_.size();
  stats_.build_ns = MonotonicNanos() - start;
}

void Pdg::AddEdge(const IrValue* from, const IrValue* to, PdgEdgeKind kind) {
  // Deduplicate (linear scan is fine: fan-out is small in practice).
  for (const Edge& e : succ_[from]) {
    if (e.to == to && e.kind == kind) {
      return;
    }
  }
  succ_[from].push_back({to, kind});
  pred_[to].push_back({from, kind});
  stats_.edges++;
}

const std::vector<Pdg::Edge>& Pdg::Successors(const IrValue* node) const {
  auto it = succ_.find(node);
  return it == succ_.end() ? empty_ : it->second;
}

const std::vector<Pdg::Edge>& Pdg::Predecessors(const IrValue* node) const {
  auto it = pred_.find(node);
  return it == pred_.end() ? empty_ : it->second;
}

std::string Pdg::DebugString() const {
  std::ostringstream out;
  out << "PDG: " << stats_.nodes << " nodes, " << stats_.edges << " edges\n";
  return out.str();
}

}  // namespace arthas
