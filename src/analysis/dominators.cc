#include "analysis/dominators.h"

#include <algorithm>
#include <cassert>

namespace arthas {

namespace {
// Reverse post-order of the *reverse* CFG starting from exit blocks.
void ReversePostOrder(const IrFunction& function,
                      std::vector<const IrBasicBlock*>* order) {
  std::map<const IrBasicBlock*, bool> visited;
  // Iterative DFS from each ret block over predecessor edges.
  std::vector<std::pair<const IrBasicBlock*, size_t>> stack;
  std::vector<const IrBasicBlock*> post;
  for (const auto& b : function.blocks()) {
    IrInstruction* term = b->terminator();
    if (term != nullptr && term->opcode() == IrOpcode::kRet &&
        !visited[b.get()]) {
      stack.push_back({b.get(), 0});
      visited[b.get()] = true;
      while (!stack.empty()) {
        auto& [block, idx] = stack.back();
        const auto& preds = block->predecessors();
        if (idx < preds.size()) {
          const IrBasicBlock* pred = preds[idx++];
          if (!visited[pred]) {
            visited[pred] = true;
            stack.push_back({pred, 0});
          }
        } else {
          post.push_back(block);
          stack.pop_back();
        }
      }
    }
  }
  order->assign(post.rbegin(), post.rend());
}
}  // namespace

PostDominators::PostDominators(const IrFunction& function) {
  ReversePostOrder(function, &blocks_);
  for (size_t i = 0; i < blocks_.size(); i++) {
    index_[blocks_[i]] = static_cast<int>(i);
  }
  ipdom_.assign(blocks_.size(), kUnreachable);

  // Cooper-Harvey-Kennedy iterative algorithm on the reverse CFG. The
  // virtual exit post-dominates everything; ret blocks have ipdom = exit.
  // Walk both fingers up the (partially built) tree until they meet. The
  // virtual exit is the root; RPO indexing guarantees ipdom links point to
  // strictly smaller indices, so walking the larger finger converges.
  auto intersect = [&](int a, int b) {
    while (a != b) {
      if (a == kVirtualExit || b == kVirtualExit) {
        return kVirtualExit;
      }
      if (a > b) {
        a = ipdom_[a];
      } else {
        b = ipdom_[b];
      }
      if (a == kUnreachable || b == kUnreachable) {
        return kVirtualExit;
      }
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < blocks_.size(); i++) {
      const IrBasicBlock* b = blocks_[i];
      // "Predecessors" in the reverse CFG are CFG successors; ret blocks
      // additionally have the virtual exit.
      int new_ipdom = kUnreachable;
      IrInstruction* term = b->terminator();
      if (term != nullptr && term->opcode() == IrOpcode::kRet) {
        new_ipdom = kVirtualExit;
      }
      for (const IrBasicBlock* succ : b->successors()) {
        auto it = index_.find(succ);
        if (it == index_.end()) {
          continue;  // successor cannot reach exit
        }
        const int si = it->second;
        if (static_cast<size_t>(si) == i) {
          continue;  // a self-loop contributes nothing to post-dominance
        }
        if (ipdom_[si] == kUnreachable) {
          continue;  // not yet processed
        }
        if (new_ipdom == kUnreachable) {
          new_ipdom = si;
        } else {
          new_ipdom = intersect(new_ipdom, si);
        }
      }
      if (new_ipdom != kUnreachable && ipdom_[i] != new_ipdom) {
        ipdom_[i] = new_ipdom;
        changed = true;
      }
    }
  }
}

int PostDominators::IndexOf(const IrBasicBlock* b) const {
  auto it = index_.find(b);
  return it == index_.end() ? kUnreachable : it->second;
}

bool PostDominators::PostDominates(const IrBasicBlock* a,
                                   const IrBasicBlock* b) const {
  const int ai = IndexOf(a);
  int bi = IndexOf(b);
  if (ai == kUnreachable || bi == kUnreachable) {
    return false;
  }
  while (bi != kVirtualExit) {
    if (bi == ai) {
      return true;
    }
    bi = ipdom_[bi];
    if (bi == kUnreachable) {
      return false;
    }
  }
  return false;
}

const IrBasicBlock* PostDominators::ImmediatePostDominator(
    const IrBasicBlock* b) const {
  const int bi = IndexOf(b);
  if (bi == kUnreachable || ipdom_[bi] < 0) {
    return nullptr;
  }
  return blocks_[ipdom_[bi]];
}

ControlDependenceMap ComputeControlDependence(const IrFunction& function) {
  ControlDependenceMap deps;
  PostDominators pdom(function);
  // For every CFG edge A -> S where S does not post-dominate A, every block
  // on the post-dominator-tree path from S up to (but excluding) ipdom(A)
  // is control dependent on A.
  for (const auto& a : function.blocks()) {
    for (const IrBasicBlock* s : a->successors()) {
      // Skip edges whose target post-dominates the source — except
      // self-edges: a block is control dependent on itself through its own
      // back edge (Ferrante et al. use *strict* post-dominance of A).
      if (s != a.get() && pdom.PostDominates(s, a.get())) {
        continue;
      }
      const IrBasicBlock* stop = pdom.ImmediatePostDominator(a.get());
      const IrBasicBlock* runner = s;
      size_t guard = function.blocks().size() + 1;
      while (runner != nullptr && runner != stop && guard-- > 0) {
        auto& vec = deps[runner];
        if (std::find(vec.begin(), vec.end(), a.get()) == vec.end()) {
          vec.push_back(a.get());
        }
        runner = pdom.ImmediatePostDominator(runner);
      }
    }
  }
  return deps;
}

}  // namespace arthas
