// Identification of persistent-memory variables and instructions.
//
// Implements paper Section 4.1 ("Locating PM Variables and Instructions"):
// starting from the results of PM library API calls (pm.alloc for
// pmemobj_zalloc/pmemobj_direct, pm.map_file for pmem_map_file), compute the
// transitive closure of all values derived from them via def-use chains and
// the pointer analysis, and collect the instructions that create or access
// those values.

#ifndef ARTHAS_ANALYSIS_PM_VARIABLES_H_
#define ARTHAS_ANALYSIS_PM_VARIABLES_H_

#include <set>
#include <vector>

#include "analysis/pointer_analysis.h"
#include "ir/ir.h"

namespace arthas {

class PmVariableInfo {
 public:
  // `pa` must already have Run().
  PmVariableInfo(const IrModule& module, const PointerAnalysis& pa);

  // Values that may denote (point into) persistent memory.
  bool IsPmValue(const IrValue* v) const { return pm_values_.count(v) != 0; }

  // Instructions that create or access PM variables (the instrumentation
  // set: each of these gets a GUID + trace call in the paper).
  const std::vector<const IrInstruction*>& PmInstructions() const {
    return pm_instructions_;
  }

  // The subset of PM instructions that write persistent state: stores
  // through PM pointers, pm.persist, pm.free, pm.alloc.
  const std::vector<const IrInstruction*>& PmWriteInstructions() const {
    return pm_writes_;
  }

  bool IsPmInstruction(const IrInstruction* inst) const {
    return pm_instruction_set_.count(inst) != 0;
  }

 private:
  std::set<const IrValue*> pm_values_;
  std::vector<const IrInstruction*> pm_instructions_;
  std::set<const IrInstruction*> pm_instruction_set_;
  std::vector<const IrInstruction*> pm_writes_;
};

}  // namespace arthas

#endif  // ARTHAS_ANALYSIS_PM_VARIABLES_H_
