// Program slicing over the PDG (Weiser, ICSE '81 — paper reference [63]).
//
// A backward slice of instruction A contains every instruction that may
// affect the values observed at A; the Arthas reactor slices the fault
// instruction and keeps the nodes with persistent-variable operands (paper
// Section 4.5). The forward slice is used by purge mode's consistency pass
// (Section 4.4): after reverting a state, purge also reverts states the
// reverted one influences.

#ifndef ARTHAS_ANALYSIS_SLICER_H_
#define ARTHAS_ANALYSIS_SLICER_H_

#include <cstdint>
#include <set>
#include <vector>

#include "analysis/pdg.h"
#include "analysis/pm_variables.h"
#include "ir/ir.h"

namespace arthas {

struct SliceResult {
  // All instructions in the slice, in BFS order from the criterion (the
  // criterion itself is first). BFS order approximates "closest dependency
  // first", which the reactor's policy functions rely on.
  std::vector<const IrInstruction*> instructions;
  int64_t elapsed_ns = 0;
};

class Slicer {
 public:
  Slicer(const Pdg& pdg, const PmVariableInfo& pm_info)
      : pdg_(pdg), pm_info_(pm_info) {}

  // Backward slice of `criterion`.
  SliceResult Backward(const IrInstruction* criterion) const;
  // Forward slice of `criterion`.
  SliceResult Forward(const IrInstruction* criterion) const;

  // Backward slice filtered to instructions with persistent operands
  // (the set the reactor joins with the dynamic trace).
  SliceResult BackwardPersistent(const IrInstruction* criterion) const;
  SliceResult ForwardPersistent(const IrInstruction* criterion) const;

 private:
  SliceResult Walk(const IrInstruction* criterion, bool backward,
                   bool persistent_only) const;

  const Pdg& pdg_;
  const PmVariableInfo& pm_info_;
};

}  // namespace arthas

#endif  // ARTHAS_ANALYSIS_SLICER_H_
