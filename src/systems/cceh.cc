#include "systems/cceh.h"

#include <cassert>
#include <cstring>
#include <set>

#include "common/logging.h"
#include "pmem/libpmem.h"

namespace arthas {

namespace {
uint64_t MixHash(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}
}  // namespace

// The global depth deliberately sits in its own cache line (as in real
// CCEH): persists of `dir`/`count` must not make the depth durable as a
// line-rounding side effect, or the f9 missing-clwb bug could never
// manifest. Buddy allocations of this size are 64-byte aligned, so offset
// 64 opens a fresh line.
struct Cceh::CcehRoot {
  PmOffset dir;           // offset 0
  uint64_t count;         // offset 8
  uint64_t reserved0[6];  // offsets 16..56 (rest of the first line)
  uint64_t global_depth;  // offset 64: own cache line
  uint64_t reserved1[7];  // offsets 72..120
};

struct Cceh::Segment {
  uint64_t local_depth;
  uint64_t used;
  struct Pair {
    uint64_t key;  // 0 = empty slot
    uint64_t value;
  } pairs[kSlotsPerSegment];
};

Cceh::Cceh(Options options)
    : PmSystemBase("cceh", options.pool_size), options_(options) {
  auto root_res = pool_->Root(sizeof(CcehRoot));
  assert(root_res.ok());
  root_oid_ = *root_res;
  CcehRoot* r = root();
  if (r->dir == 0) {
    const uint64_t entries = 1ULL << options_.initial_global_depth;
    auto dir = pool_->Zalloc(entries * sizeof(PmOffset));
    assert(dir.ok());
    auto* d = pool_->Direct<PmOffset>(*dir);
    for (uint64_t i = 0; i < entries; i++) {
      auto seg = pool_->Zalloc(sizeof(Segment));
      assert(seg.ok());
      SegmentAt(seg->off)->local_depth = options_.initial_global_depth;
      TracedPersist(*seg, 0, sizeof(Segment), kGuidCcSegInit);
      d[i] = seg->off;
    }
    TracedPersistRange(dir->off, entries * sizeof(PmOffset), kGuidCcDirStore);
    r->dir = dir->off;
    r->global_depth = options_.initial_global_depth;
    TracedPersist(root_oid_, 0, sizeof(CcehRoot), kGuidCcRootDirStore);
  }
  BuildIrModel();
}

Cceh::CcehRoot* Cceh::root() { return pool_->Direct<CcehRoot>(root_oid_); }

Cceh::Segment* Cceh::SegmentAt(PmOffset off) {
  return reinterpret_cast<Segment*>(pool_->device().Live(off));
}

PmOffset* Cceh::Directory() {
  return pool_->Direct<PmOffset>(Oid{root()->dir});
}

uint64_t Cceh::DirIndex(uint64_t hash, uint64_t depth) const {
  return depth == 0 ? 0 : hash >> (64 - depth);
}

Cceh::Segment* Cceh::SegmentForIndex(uint64_t idx) {
  // A depth/directory generation mismatch can send the index past the
  // directory array — a wild read that would segfault the real system.
  CcehRoot* r = root();
  auto usable = pool_->UsableSize(Oid{r->dir});
  if (!usable.ok() || (idx + 1) * sizeof(PmOffset) > *usable) {
    RaiseFault(FailureKind::kCrash, kGuidCcInsertLoop,
               root_oid_.off + offsetof(CcehRoot, dir),
               "directory index out of range (depth/directory mismatch)",
               {"CCEH::Insert", "Directory"});
    return nullptr;
  }
  const PmOffset seg_off = Directory()[idx];
  if (seg_off == 0 || seg_off + sizeof(Segment) > pool_->device().size()) {
    RaiseFault(FailureKind::kCrash, kGuidCcInsertLoop,
               root_oid_.off + offsetof(CcehRoot, dir),
               "directory entry points outside the pool",
               {"CCEH::Insert", "Directory"});
    return nullptr;
  }
  return SegmentAt(seg_off);
}

uint64_t Cceh::global_depth() { return root()->global_depth; }

Status Cceh::Insert(uint64_t key, uint64_t value) {
  if (key == 0) {
    return InvalidArgument("key 0 is the empty-slot marker");
  }
  const uint64_t hash = MixHash(key);
  for (int retries = 0; retries <= options_.retry_budget; retries++) {
    CcehRoot* r = root();
    const uint64_t idx = DirIndex(hash, r->global_depth);
    Segment* seg = SegmentForIndex(idx);
    if (seg == nullptr) {
      return Internal(fault_->message);
    }
    const PmOffset seg_off = pool_->device().OffsetOf(seg);
    tracer_.Record(kGuidCcInsertLoop, seg_off);
    // Probe for the key or an empty slot.
    for (int i = 0; i < kSlotsPerSegment; i++) {
      const int slot = (hash + i) % kSlotsPerSegment;
      auto& pair = seg->pairs[slot];
      if (pair.key == key || pair.key == 0) {
        const bool fresh = pair.key == 0;
        pair.key = key;
        pair.value = value;
        TracedPersistRange(
            seg_off + offsetof(Segment, pairs) + slot * sizeof(Segment::Pair),
            sizeof(Segment::Pair), kGuidCcInsertStore);
        if (fresh) {
          seg->used++;
          r->count++;
          TracedPersist(root_oid_, offsetof(CcehRoot, count),
                        sizeof(uint64_t), kGuidCcCountStore);
        }
        return OkStatus();
      }
    }
    // Segment full: split or double.
    if (seg->local_depth < r->global_depth) {
      ARTHAS_RETURN_IF_ERROR(Split(seg_off, hash));
    } else if (seg->local_depth == r->global_depth) {
      ARTHAS_RETURN_IF_ERROR(DoubleDirectory());
    }
    // local_depth > global_depth is the inconsistent f9 state: neither
    // branch applies, the loop keeps re-probing the same full segment.
  }
  RaiseFault(FailureKind::kHang, kGuidCcInsertLoop,
             root_oid_.off + offsetof(CcehRoot, dir),
             "insert stuck in split-retry loop (directory/depth mismatch)",
             {"CCEH::Insert", "Segment::Insert4split"});
  return Internal(fault_->message);
}

Status Cceh::Split(PmOffset seg_off, uint64_t hash) {
  CcehRoot* r = root();
  Segment* seg = SegmentAt(seg_off);
  const uint64_t new_depth = seg->local_depth + 1;
  auto fresh = pool_->Zalloc(sizeof(Segment));
  if (!fresh.ok()) {
    return fresh.status();
  }
  Segment* buddy = SegmentAt(fresh->off);
  buddy->local_depth = new_depth;
  // Redistribute: pairs whose discriminating bit is 1 move to the buddy.
  for (int i = 0; i < kSlotsPerSegment; i++) {
    auto& pair = seg->pairs[i];
    if (pair.key == 0) {
      continue;
    }
    const uint64_t h = MixHash(pair.key);
    if ((h >> (64 - new_depth)) & 1ULL) {
      for (int j = 0; j < kSlotsPerSegment; j++) {
        const int slot = (h + j) % kSlotsPerSegment;
        if (buddy->pairs[slot].key == 0) {
          buddy->pairs[slot] = pair;
          buddy->used++;
          break;
        }
      }
      pair.key = 0;
      pair.value = 0;
      seg->used--;
      TracedPersistRange(
          seg_off + offsetof(Segment, pairs) + i * sizeof(Segment::Pair),
          sizeof(Segment::Pair), kGuidCcPairStore);
    }
  }
  TracedPersist(*fresh, 0, sizeof(Segment), kGuidCcSegInit);
  seg->local_depth = new_depth;
  TracedPersist(Oid{seg_off}, offsetof(Segment, local_depth),
                sizeof(uint64_t), kGuidCcDepthLStore);
  // Patch every directory entry that maps to the buddy's half.
  PmOffset* dir = Directory();
  const uint64_t entries = 1ULL << r->global_depth;
  for (uint64_t i = 0; i < entries; i++) {
    if (dir[i] != seg_off) {
      continue;
    }
    if ((i >> (r->global_depth - new_depth)) & 1ULL) {
      dir[i] = fresh->off;
      TracedPersistRange(r->dir + i * sizeof(PmOffset), sizeof(PmOffset),
                         kGuidCcDirStore);
    }
  }
  (void)hash;
  return OkStatus();
}

Status Cceh::DoubleDirectory() {
  CcehRoot* r = root();
  const uint64_t old_entries = 1ULL << r->global_depth;
  auto bigger = pool_->Zalloc(old_entries * 2 * sizeof(PmOffset));
  if (!bigger.ok()) {
    return bigger.status();
  }
  auto* nd = pool_->Direct<PmOffset>(*bigger);
  const PmOffset* od = Directory();
  for (uint64_t i = 0; i < old_entries; i++) {
    nd[2 * i] = od[i];
    nd[2 * i + 1] = od[i];
  }
  TracedPersistRange(bigger->off, old_entries * 2 * sizeof(PmOffset),
                     kGuidCcDirStore);
  r->dir = bigger->off;
  TracedPersist(root_oid_, offsetof(CcehRoot, dir), sizeof(PmOffset),
                kGuidCcRootDirStore);
  r->global_depth++;
  if (!(FaultArmed(FaultId::kF9DirectoryDoubling) && crash_window_)) {
    TracedPersist(root_oid_, offsetof(CcehRoot, global_depth),
                  sizeof(uint64_t), kGuidCcDepthGStore);
  }
  // f9: the clwb for the global depth is delayed; when the crash lands in
  // the window, the CPU-visible value is correct so everything works until
  // the crash, but the durable image keeps the stale depth (paper 2.3: "if
  // an untimely crash occurs before the global depth is updated, insertions
  // get stuck in an infinite loop").
  return OkStatus();
}

Result<uint64_t> Cceh::Lookup(uint64_t key) {
  const uint64_t hash = MixHash(key);
  CcehRoot* r = root();
  Segment* seg = SegmentForIndex(DirIndex(hash, r->global_depth));
  if (seg == nullptr) {
    return Internal(fault_->message);
  }
  for (int i = 0; i < kSlotsPerSegment; i++) {
    const int slot = (hash + i) % kSlotsPerSegment;
    if (seg->pairs[slot].key == key) {
      return seg->pairs[slot].value;
    }
  }
  return Status(StatusCode::kNotFound, "key absent");
}

Response Cceh::HandleRequest(const Request& request) {
  Response response;
  if (HasFault()) {
    response.status = Internal("server unavailable");
    return response;
  }
  const uint64_t key = Fnv(request.key);
  switch (request.op) {
    case Request::Op::kPut: {
      response.status = Insert(key, Fnv(request.value));
      return response;
    }
    case Request::Op::kGet: {
      auto value = Lookup(key);
      response.found = value.ok();
      if (!response.found && request.must_exist) {
        RaiseFault(FailureKind::kWrongResult, kGuidCcInsertLoop,
                   root_oid_.off + offsetof(CcehRoot, dir),
                   "inserted key missing", {"CCEH::Get"});
        response.status = Internal(fault_->message);
        return response;
      }
      if (response.found) {
        response.value = std::to_string(*value);
      }
      response.status = OkStatus();
      return response;
    }
    default:
      response.status = Unimplemented("op not supported by cceh");
      return response;
  }
}

uint64_t Cceh::Fnv(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
  }
  return h == 0 ? 1 : h;
}

Result<std::string> Cceh::FindKeyForInconsistentSegment(bool require_full) {
  CcehRoot* r = root();
  auto dir_usable = pool_->UsableSize(Oid{r->dir});
  for (int i = 0; i < 5000; i++) {
    const std::string key = "stuck" + std::to_string(i);
    const uint64_t k = Fnv(key);
    const uint64_t hash = MixHash(k);
    const uint64_t idx = DirIndex(hash, r->global_depth);
    if (!dir_usable.ok() || (idx + 1) * sizeof(PmOffset) > *dir_usable) {
      continue;  // Insert would crash here; the plain probe covers it
    }
    const PmOffset seg_off = Directory()[idx];
    if (seg_off == 0 || seg_off + sizeof(Segment) > pool_->device().size()) {
      continue;
    }
    Segment* seg = SegmentAt(seg_off);
    if (seg->local_depth <= r->global_depth) {
      continue;
    }
    bool full = true;
    bool present = false;
    for (int s = 0; s < kSlotsPerSegment; s++) {
      const int slot = (hash + s) % kSlotsPerSegment;
      if (seg->pairs[slot].key == k) {
        present = true;
      }
      if (seg->pairs[slot].key == 0) {
        full = false;
      }
    }
    if (require_full ? (full && !present) : (!full && !present)) {
      return key;
    }
  }
  return Status(StatusCode::kNotFound, "no inconsistent segment reachable");
}

uint64_t Cceh::ItemCount() { return root()->count; }

Status Cceh::CheckConsistency() {
  ARTHAS_RETURN_IF_ERROR(pool_->CheckIntegrity());
  CcehRoot* r = root();
  const uint64_t entries = 1ULL << r->global_depth;
  uint64_t total = 0;
  std::set<PmOffset> seen;
  const PmOffset* dir = Directory();
  for (uint64_t i = 0; i < entries; i++) {
    Segment* seg = SegmentAt(dir[i]);
    if (seg->local_depth > r->global_depth) {
      return Corruption("segment local depth exceeds global depth");
    }
    if (seen.insert(dir[i]).second) {
      uint64_t used = 0;
      for (const auto& pair : seg->pairs) {
        if (pair.key != 0) {
          used++;
        }
      }
      if (used != seg->used) {
        return Corruption("segment used-count mismatch");
      }
      total += used;
    }
  }
  if (total != r->count) {
    return Corruption("directory item count mismatch");
  }
  return OkStatus();
}

Status Cceh::Recover() {
  CcehRoot* r = root();
  RecoveryTouch(r->dir);
  const uint64_t entries = 1ULL << r->global_depth;
  auto dir_usable = pool_->UsableSize(Oid{r->dir});
  if (!dir_usable.ok() || entries * sizeof(PmOffset) > *dir_usable) {
    RaiseFault(FailureKind::kCrash, kGuidCcInsertLoop,
               root_oid_.off + offsetof(CcehRoot, dir),
               "recovery: directory smaller than 2^global_depth",
               {"CCEH::Recovery"});
    return OkStatus();
  }
  // Recovery scans every segment once; the item count and per-segment used
  // counters are derived metadata recomputed from the pairs (as real CCEH's
  // recovery pass does).
  const PmOffset* dir = Directory();
  uint64_t total = 0;
  std::set<PmOffset> seen;
  for (uint64_t i = 0; i < entries; i++) {
    RecoveryTouch(dir[i]);
    if (dir[i] == 0 || dir[i] + sizeof(Segment) > pool_->device().size() ||
        !seen.insert(dir[i]).second) {
      continue;
    }
    Segment* seg = SegmentAt(dir[i]);
    uint64_t used = 0;
    for (const auto& pair : seg->pairs) {
      if (pair.key != 0) {
        used++;
      }
    }
    seg->used = used;
    pool_->device().PersistQuiet(dir[i] + offsetof(Segment, used),
                                 sizeof(uint64_t));
    total += used;
  }
  r->count = total;
  pool_->device().PersistQuiet(root_oid_.off + offsetof(CcehRoot, count),
                               sizeof(uint64_t));
  return OkStatus();
}

// --- IR model ----------------------------------------------------------------
//
// Root fields: 0 dir, 1 global_depth, 2 count. Segment fields: 0
// local_depth, 1 used, 2 pairs.
void Cceh::BuildIrModel() {
  model_ = std::make_unique<IrModule>("cceh");
  IrModule& m = *model_;
  IrBuilder b(m);
  IrGlobal* g_root = m.CreateGlobal("g_root");

  IrFunction* alloc_seg = m.CreateFunction("alloc_seg", 0);
  {
    b.SetInsertPoint(alloc_seg->CreateBlock("entry"));
    IrInstruction* s = b.PmAlloc(b.Const(256), "seg");
    IrInstruction* st = b.Store(b.Const(1), b.FieldAddr(s, 0, "ld_addr"));
    st->set_guid(kGuidCcSegInit);
    b.Ret(s);
  }

  IrFunction* alloc_dir = m.CreateFunction("alloc_dir", 0);
  {
    b.SetInsertPoint(alloc_dir->CreateBlock("entry"));
    IrInstruction* d = b.PmAlloc(b.Const(256), "dir");
    b.Ret(d);
  }

  IrFunction* init = m.CreateFunction("init", 0);
  {
    b.SetInsertPoint(init->CreateBlock("entry"));
    IrInstruction* r = b.PmMapFile("root");
    b.Store(r, g_root);
    IrInstruction* d = b.Call(alloc_dir, {}, "d");
    IrInstruction* s = b.Call(alloc_seg, {}, "s");
    IrInstruction* slot = b.IndexAddr(d, b.Const(0), "slot");
    b.Store(s, slot);
    b.Store(d, b.FieldAddr(r, 0, "dir_addr"));
    b.Ret();
  }

  // fn split(seg): redistribute + patch directory.
  IrFunction* split = m.CreateFunction("split", 1);
  {
    b.SetInsertPoint(split->CreateBlock("entry"));
    IrArgument* seg = split->arg(0);
    IrInstruction* buddy = b.Call(alloc_seg, {}, "buddy");
    IrInstruction* pair_addr = b.FieldAddr(seg, 2, "pairs_addr");
    IrInstruction* pair = b.Load(pair_addr, "pair");
    IrInstruction* bslot = b.FieldAddr(buddy, 2, "bpairs_addr");
    b.Store(pair, bslot, kGuidCcPairStore);
    IrInstruction* ld_addr = b.FieldAddr(seg, 0, "ld_addr");
    IrInstruction* ld = b.Load(ld_addr, "ld");
    b.Store(b.BinOp(ld, b.Const(1), "ld1"), ld_addr, kGuidCcDepthLStore);
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* dir = b.Load(b.FieldAddr(r, 0, "dir_addr"), "dir");
    IrInstruction* dslot = b.IndexAddr(dir, ld, "dslot");
    b.Store(buddy, dslot, kGuidCcDirStore);
    b.Ret();
  }

  // fn double_dir(): the f9 metadata group.
  IrFunction* double_dir = m.CreateFunction("double_dir", 0);
  {
    b.SetInsertPoint(double_dir->CreateBlock("entry"));
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* nd = b.Call(alloc_dir, {}, "nd");
    IrInstruction* dir_addr = b.FieldAddr(r, 0, "dir_addr");
    IrInstruction* od = b.Load(dir_addr, "od");
    IrInstruction* oslot = b.IndexAddr(od, b.Const(0), "oslot");
    IrInstruction* seg = b.Load(oslot, "seg");
    IrInstruction* nslot = b.IndexAddr(nd, b.Const(0), "nslot");
    b.Store(seg, nslot);
    b.Store(nd, dir_addr, kGuidCcRootDirStore);
    IrInstruction* gd_addr = b.FieldAddr(r, 1, "gd_addr");
    IrInstruction* gd = b.Load(gd_addr, "gd");
    b.Store(b.BinOp(gd, b.Const(1), "gd1"), gd_addr, kGuidCcDepthGStore);
    b.Ret();
  }

  // fn insert(k, v): the retry loop hosting the fault site.
  IrFunction* insert = m.CreateFunction("insert", 2);
  {
    IrBasicBlock* entry = insert->CreateBlock("entry");
    IrBasicBlock* loop = insert->CreateBlock("loop");
    IrBasicBlock* store_bb = insert->CreateBlock("store");
    IrBasicBlock* full_bb = insert->CreateBlock("full");
    IrBasicBlock* split_bb = insert->CreateBlock("do_split");
    IrBasicBlock* double_bb = insert->CreateBlock("do_double");
    IrBasicBlock* done = insert->CreateBlock("done");
    b.SetInsertPoint(entry);
    IrArgument* k = insert->arg(0);
    IrArgument* v = insert->arg(1);
    IrInstruction* r = b.Load(g_root, "r");
    b.Br(loop);
    b.SetInsertPoint(loop);
    IrInstruction* gd = b.Load(b.FieldAddr(r, 1, "gd_addr"), "gd");
    IrInstruction* dir = b.Load(b.FieldAddr(r, 0, "dir_addr"), "dir");
    IrInstruction* idx = b.BinOp(k, gd, "idx");
    IrInstruction* dslot = b.IndexAddr(dir, idx, "dslot");
    IrInstruction* seg = b.Load(dslot, "seg");
    seg->set_guid(kGuidCcInsertLoop);
    IrInstruction* slot_addr = b.FieldAddr(seg, 2, "slot_addr");
    IrInstruction* cur = b.Load(slot_addr, "cur");
    IrInstruction* empty = b.Cmp(cur, b.Const(0), "empty");
    b.CondBr(empty, store_bb, full_bb);
    b.SetInsertPoint(store_bb);
    b.Store(v, slot_addr, kGuidCcInsertStore);
    IrInstruction* cnt_addr = b.FieldAddr(r, 2, "cnt_addr");
    IrInstruction* cnt = b.Load(cnt_addr, "cnt");
    b.Store(b.BinOp(cnt, b.Const(1), "cnt1"), cnt_addr, kGuidCcCountStore);
    b.Br(done);
    b.SetInsertPoint(full_bb);
    IrInstruction* ld = b.Load(b.FieldAddr(seg, 0, "ld_addr"), "ld");
    IrInstruction* lt = b.Cmp(ld, gd, "lt");
    b.CondBr(lt, split_bb, double_bb);
    b.SetInsertPoint(split_bb);
    b.Call(split, {seg});
    b.Br(loop);
    b.SetInsertPoint(double_bb);
    b.Call(double_dir, {});
    b.Br(loop);
    b.SetInsertPoint(done);
    b.Ret();
  }

  assert(model_->Verify().ok());
  for (const IrInstruction* inst : model_->AllInstructions()) {
    if (inst->guid() != kNoGuid) {
      (void)registry_.Register(inst->guid(), name_,
                               inst->block()->parent()->name() + ":" +
                                   inst->block()->name(),
                               inst->ToString());
    }
  }
}

}  // namespace arthas
