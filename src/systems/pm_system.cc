#include "systems/pm_system.h"

namespace arthas {

const char* FailureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone:
      return "none";
    case FailureKind::kCrash:
      return "crash";
    case FailureKind::kAssertion:
      return "assertion";
    case FailureKind::kHang:
      return "hang";
    case FailureKind::kWrongResult:
      return "wrong-result";
    case FailureKind::kOutOfSpace:
      return "out-of-space";
    case FailureKind::kLeak:
      return "leak";
  }
  return "?";
}

}  // namespace arthas
