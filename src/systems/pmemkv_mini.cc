#include "systems/pmemkv_mini.h"

#include <cassert>
#include <cstring>

#include "common/logging.h"

namespace arthas {

namespace {
constexpr PmOffset kKvNull = 0;

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
  }
  return h;
}
}  // namespace

struct PmemkvMini::KvRoot {
  PmOffset buckets;
  uint64_t nbuckets;
  uint64_t count;
};

struct PmemkvMini::KvEntry {
  PmOffset next;
  uint32_t klen;
  uint32_t vlen;
  char data[];
};

PmemkvMini::PmemkvMini(Options options)
    : PmSystemBase("pmemkv_mini", options.pool_size), options_(options) {
  auto root_res = pool_->Root(sizeof(KvRoot));
  assert(root_res.ok());
  root_oid_ = *root_res;
  KvRoot* r = root();
  if (r->buckets == kKvNull) {
    auto table = pool_->Zalloc(options_.buckets * sizeof(PmOffset));
    assert(table.ok());
    r->buckets = table->off;
    r->nbuckets = options_.buckets;
    pool_->PersistObject<KvRoot>(root_oid_);
  }
  BuildIrModel();
}

PmemkvMini::KvRoot* PmemkvMini::root() {
  return pool_->Direct<KvRoot>(root_oid_);
}

uint64_t PmemkvMini::BucketIndex(const std::string& key) const {
  const auto* r =
      const_cast<PmemkvMini*>(this)->pool_->Direct<KvRoot>(root_oid_);
  return Fnv1a(key) % r->nbuckets;
}

PmOffset* PmemkvMini::BucketSlot(uint64_t index) {
  return pool_->Direct<PmOffset>(Oid{root()->buckets}) + index;
}

// Validated entry access: a wild chain pointer (possible after external
// reversion of bucket stores) would segfault the real system.
PmemkvMini::KvEntry* PmemkvMini::EntryAt(PmOffset off) {
  if (off == kKvNull || off + sizeof(KvEntry) > pool_->device().size() ||
      !pool_->UsableSize(Oid{off}).ok()) {
    return nullptr;
  }
  return pool_->Direct<KvEntry>(Oid{off});
}

Response PmemkvMini::HandleRequest(const Request& request) {
  Response response;
  if (HasFault()) {
    response.status = Internal("server unavailable");
    return response;
  }
  // The background worker gets a slice of CPU between requests — unless the
  // lazy-free bug is armed, in which case it is modelled as never running
  // before the next crash (the race the paper describes).
  if (!FaultArmed(FaultId::kF12AsyncLazyFree)) {
    RunAsyncFreeWorker();
  }
  switch (request.op) {
    case Request::Op::kPut:
      return Put(request);
    case Request::Op::kGet:
      return Get(request);
    case Request::Op::kDelete:
      return Delete(request);
    default:
      response.status = Unimplemented("op not supported by pmemkv_mini");
      return response;
  }
}

void PmemkvMini::RunAsyncFreeWorker() {
  std::lock_guard<std::mutex> counters(counter_mutex_);
  for (const PmOffset off : deferred_free_) {
    (void)pool_->Free(Oid{off});
  }
  deferred_free_.clear();
}

Response PmemkvMini::Put(const Request& request) {
  Response response;
  KvRoot* r = root();
  // Update in place when the existing entry's block can hold the value.
  PmOffset cur = *BucketSlot(BucketIndex(request.key));
  uint64_t budget = 4096;
  while (cur != kKvNull && budget-- > 0) {
    auto* entry = EntryAt(cur);
    if (entry == nullptr) {
      break;
    }
    if (entry->klen == request.key.size() &&
        std::memcmp(entry->data, request.key.data(), request.key.size()) ==
            0) {
      auto usable = pool_->UsableSize(Oid{cur});
      if (usable.ok() && sizeof(KvEntry) + entry->klen +
                                 request.value.size() <=
                             *usable) {
        std::memcpy(entry->data + entry->klen, request.value.data(),
                    request.value.size());
        entry->vlen = request.value.size();
        TracedPersist(Oid{cur}, 0,
                      sizeof(KvEntry) + entry->klen + entry->vlen,
                      kGuidKvEntryInit);
        response.status = OkStatus();
        return response;
      }
      break;
    }
    cur = entry->next;
  }
  // Remove any existing mapping first.
  Request del = request;
  del.op = Request::Op::kDelete;
  Delete(del);

  tracer_.Record(kGuidKvAllocSite, r->count);
  auto oid = pool_->Zalloc(LineSafeSize(
      sizeof(KvEntry) + request.key.size() + request.value.size()));
  if (!oid.ok()) {
    RaiseFault(FailureKind::kOutOfSpace, kGuidKvAllocSite, kNullPmOffset,
               "put failed: persistent pool exhausted",
               {"cmap::put", "pmemobj_tx_alloc"});
    response.status = oid.status();
    return response;
  }
  auto* entry = pool_->Direct<KvEntry>(*oid);
  entry->klen = request.key.size();
  entry->vlen = request.value.size();
  std::memcpy(entry->data, request.key.data(), request.key.size());
  std::memcpy(entry->data + entry->klen, request.value.data(),
              request.value.size());
  const uint64_t index = BucketIndex(request.key);
  entry->next = *BucketSlot(index);
  TracedPersist(*oid, 0, sizeof(KvEntry) + entry->klen + entry->vlen,
                kGuidKvEntryInit);
  *BucketSlot(index) = oid->off;
  TracedPersistRange(r->buckets + index * sizeof(PmOffset), sizeof(PmOffset),
                     kGuidKvBucketStore);
  {
    // Persist inside the counter section: the media copy reads the counter's
    // whole cache line, so it must not overlap another stripe's increment.
    std::lock_guard<std::mutex> counters(counter_mutex_);
    r->count++;
    TracedPersist(root_oid_, offsetof(KvRoot, count), sizeof(uint64_t),
                  kGuidKvCountStore);
  }
  response.status = OkStatus();
  return response;
}

Response PmemkvMini::Get(const Request& request) {
  Response response;
  PmOffset cur = *BucketSlot(BucketIndex(request.key));
  uint64_t budget = 4096;
  while (cur != kKvNull && budget-- > 0) {
    auto* entry = EntryAt(cur);
    if (entry == nullptr) {
      RaiseFault(FailureKind::kCrash, kGuidKvLookupMiss, cur,
                 "cmap chain points at a wild address", {"cmap::get"});
      response.status = Internal(fault_->message);
      return response;
    }
    if (entry->klen == request.key.size() &&
        std::memcmp(entry->data, request.key.data(), request.key.size()) ==
            0) {
      response.found = true;
      response.value.assign(entry->data + entry->klen, entry->vlen);
      response.status = OkStatus();
      return response;
    }
    cur = entry->next;
  }
  if (request.must_exist) {
    RaiseFault(FailureKind::kWrongResult, kGuidKvLookupMiss,
               root()->buckets + BucketIndex(request.key) * sizeof(PmOffset),
               "inserted key missing", {"cmap::get"});
    response.status = Internal(fault_->message);
    return response;
  }
  response.found = false;
  response.status = OkStatus();
  return response;
}

Response PmemkvMini::Delete(const Request& request) {
  Response response;
  KvRoot* r = root();
  const uint64_t index = BucketIndex(request.key);
  PmOffset prev = kKvNull;
  PmOffset cur = *BucketSlot(index);
  uint64_t budget = 4096;
  while (cur != kKvNull && budget-- > 0) {
    auto* entry = EntryAt(cur);
    if (entry == nullptr) {
      RaiseFault(FailureKind::kCrash, kGuidKvLookupMiss, cur,
                 "cmap chain points at a wild address", {"cmap::remove"});
      response.status = Internal(fault_->message);
      return response;
    }
    if (entry->klen == request.key.size() &&
        std::memcmp(entry->data, request.key.data(), request.key.size()) ==
            0) {
      // Unlink now; free later in the background (PMEMKV's latency
      // optimization — and f12's leak window).
      if (prev == kKvNull) {
        *BucketSlot(index) = entry->next;
        TracedPersistRange(r->buckets + index * sizeof(PmOffset),
                           sizeof(PmOffset), kGuidKvBucketStore);
      } else {
        auto* prev_entry = pool_->Direct<KvEntry>(Oid{prev});
        prev_entry->next = entry->next;
        TracedPersist(Oid{prev}, offsetof(KvEntry, next), sizeof(PmOffset),
                      kGuidKvEntryInit);
      }
      {
        std::lock_guard<std::mutex> counters(counter_mutex_);
        deferred_free_.push_back(cur);
        r->count--;
        TracedPersist(root_oid_, offsetof(KvRoot, count), sizeof(uint64_t),
                      kGuidKvCountStore);
      }
      response.found = true;
      response.status = OkStatus();
      return response;
    }
    prev = cur;
    cur = entry->next;
  }
  response.found = false;
  response.status = OkStatus();
  return response;
}

uint64_t PmemkvMini::ItemCount() { return root()->count; }

Status PmemkvMini::CheckConsistency() {
  ARTHAS_RETURN_IF_ERROR(pool_->CheckIntegrity());
  KvRoot* r = root();
  uint64_t reachable = 0;
  for (uint64_t i = 0; i < r->nbuckets; i++) {
    PmOffset cur = *BucketSlot(i);
    uint64_t budget = 4096;
    while (cur != kKvNull) {
      if (budget-- == 0) {
        return Corruption("chain cycle");
      }
      auto* entry = EntryAt(cur);
      if (entry == nullptr) {
        return Corruption("cmap chain points at a wild address");
      }
      reachable++;
      cur = entry->next;
    }
  }
  if (reachable != r->count) {
    return Corruption("count mismatch");
  }
  return OkStatus();
}

Status PmemkvMini::Recover() {
  // Restart loses the volatile deferred-free queue: whatever was waiting to
  // be freed leaks (f12's essence).
  deferred_free_.clear();
  KvRoot* r = root();
  RecoveryTouch(r->buckets);
  for (uint64_t i = 0; i < r->nbuckets; i++) {
    PmOffset cur = *BucketSlot(i);
    uint64_t budget = 4096;
    while (cur != kKvNull && budget-- > 0) {
      auto* entry = EntryAt(cur);
      if (entry == nullptr) {
        RaiseFault(FailureKind::kCrash, kGuidKvLookupMiss, cur,
                   "recovery hit a wild cmap pointer", {"cmap::recover"});
        return OkStatus();
      }
      RecoveryTouch(cur);
      cur = entry->next;
    }
  }
  return OkStatus();
}

// --- IR model ----------------------------------------------------------------
void PmemkvMini::BuildIrModel() {
  model_ = std::make_unique<IrModule>("pmemkv_mini");
  IrModule& m = *model_;
  IrBuilder b(m);
  IrGlobal* g_root = m.CreateGlobal("g_root");

  IrFunction* init = m.CreateFunction("init", 0);
  {
    b.SetInsertPoint(init->CreateBlock("entry"));
    IrInstruction* r = b.PmMapFile("root");
    b.Store(r, g_root);
    IrInstruction* tbl = b.PmAlloc(b.Const(512), "tbl");
    b.Store(tbl, b.FieldAddr(r, 0, "tbl_addr"));
    b.Ret();
  }

  IrFunction* put = m.CreateFunction("put", 2);
  {
    b.SetInsertPoint(put->CreateBlock("entry"));
    IrArgument* k = put->arg(0);
    IrArgument* v = put->arg(1);
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* e = b.PmAlloc(b.Const(64), "e");
    e->set_guid(kGuidKvAllocSite);
    b.Store(v, b.FieldAddr(e, 2, "data_addr"), kGuidKvEntryInit);
    IrInstruction* tbl = b.Load(b.FieldAddr(r, 0, "tbl_addr"), "tbl");
    IrInstruction* slot = b.IndexAddr(tbl, k, "slot");
    IrInstruction* head = b.Load(slot, "head");
    b.Store(head, b.FieldAddr(e, 0, "next_addr"));
    b.Store(e, slot, kGuidKvBucketStore);
    IrInstruction* cnt_addr = b.FieldAddr(r, 2, "cnt_addr");
    IrInstruction* cnt = b.Load(cnt_addr, "cnt");
    b.Store(b.BinOp(cnt, b.Const(1), "cnt1"), cnt_addr, kGuidKvCountStore);
    b.Ret();
  }

  IrFunction* get = m.CreateFunction("get", 1);
  {
    IrBasicBlock* entry = get->CreateBlock("entry");
    IrBasicBlock* walk = get->CreateBlock("walk");
    IrBasicBlock* body = get->CreateBlock("body");
    IrBasicBlock* miss = get->CreateBlock("miss");
    b.SetInsertPoint(entry);
    IrArgument* k = get->arg(0);
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* tbl = b.Load(b.FieldAddr(r, 0, "tbl_addr"), "tbl");
    IrInstruction* slot = b.IndexAddr(tbl, k, "slot");
    IrInstruction* h0 = b.Load(slot, "h0");
    b.Br(walk);
    b.SetInsertPoint(walk);
    IrInstruction* it = b.Phi({h0}, "it");
    IrInstruction* c = b.Cmp(it, b.Const(0), "c");
    b.CondBr(c, body, miss);
    b.SetInsertPoint(body);
    IrInstruction* itn = b.Load(b.FieldAddr(it, 0, "next_addr"), "itn");
    b.Br(walk);
    it->AddOperand(itn);
    b.SetInsertPoint(miss);
    IrInstruction* mm = b.Load(b.IndexAddr(tbl, k, "slot2"), "mm");
    mm->set_guid(kGuidKvLookupMiss);
    b.Ret(mm);
  }

  // fn del(k): unlink without freeing (the async free happens elsewhere —
  // or never).
  IrFunction* del = m.CreateFunction("del", 1);
  {
    b.SetInsertPoint(del->CreateBlock("entry"));
    IrArgument* k = del->arg(0);
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* tbl = b.Load(b.FieldAddr(r, 0, "tbl_addr"), "tbl");
    IrInstruction* slot = b.IndexAddr(tbl, k, "slot");
    IrInstruction* e = b.Load(slot, "e");
    IrInstruction* nxt = b.Load(b.FieldAddr(e, 0, "next_addr"), "nxt");
    b.Store(nxt, slot);
    IrInstruction* cnt_addr = b.FieldAddr(r, 2, "cnt_addr");
    IrInstruction* cnt = b.Load(cnt_addr, "cnt");
    b.Store(b.BinOp(cnt, b.Const(-1), "cntm"), cnt_addr);
    b.Ret();
  }

  assert(model_->Verify().ok());
  for (const IrInstruction* inst : model_->AllInstructions()) {
    if (inst->guid() != kNoGuid) {
      (void)registry_.Register(inst->guid(), name_,
                               inst->block()->parent()->name() + ":" +
                                   inst->block()->name(),
                               inst->ToString());
    }
  }
}

}  // namespace arthas
