// Common interface every target PM system implements.
//
// The evaluation runs five PM systems (Memcached, Redis, Pelikan, PMEMKV,
// CCEH re-implemented as mini systems in src/systems). The harness drives
// them through this request/response interface, restarts them by crashing
// the PM pool and re-running recovery, and reads the failure surface the
// Arthas detector monitors (crash signal, exit code, fault instruction,
// stack digest, PM usage).
//
// A real deployment would observe a separate process; here the "process" is
// the system object plus all volatile state, and "process death" is
// modelled by destroying volatile state and calling Restart().

#ifndef ARTHAS_SYSTEMS_PM_SYSTEM_H_
#define ARTHAS_SYSTEMS_PM_SYSTEM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "ir/ir.h"
#include "pmem/pool.h"
#include "trace/guid_registry.h"
#include "trace/tracer.h"

namespace arthas {

class ConsistencySubstrate;

// How a failed run manifested (paper Section 4.3: crash, assertion failure,
// hang, memory leak, wrong results; plus out-of-space for persistent leaks).
enum class FailureKind {
  kNone,
  kCrash,        // segfault-equivalent
  kAssertion,    // server panic / assertion failure
  kHang,         // infinite loop / deadlock
  kWrongResult,  // user-visible incorrect behaviour (incl. data loss)
  kOutOfSpace,   // persistent pool exhausted
  kLeak,         // PM usage monitor tripped
};

const char* FailureKindName(FailureKind kind);

// What the detector retrieves about a failure (paper Section 4.3: "faulting
// instruction, exit code, stack trace, memory usage").
struct FaultInfo {
  FailureKind kind = FailureKind::kNone;
  Guid fault_guid = kNoGuid;  // instruction where the failure manifested
  // Faulting PM access, when one exists (a crashing load/store reports it
  // via siginfo in a real deployment). kNullPmOffset when unknown.
  PmOffset fault_address = kNullPmOffset;
  int exit_code = 0;
  std::string message;
  std::vector<std::string> stack;  // symbolic frames, innermost first
  uint64_t pm_used_bytes = 0;
};

// Request surface shared by the KV-style targets.
struct Request {
  enum class Op {
    kPut,
    kGet,
    kDelete,
    kAppend,       // Memcached/Pelikan append to an existing value
    kHold,         // take a reference on an item (refcount++)
    kRelease,      // drop a reference (refcount--)
    kFlushAll,     // Memcached flush_all (takes delay in int_arg)
    kListPush,     // Redis listpack append (value is the element)
    kListRead,     // Redis listpack read-back
    kStats,        // Pelikan stats command (subcommand in `key`)
    kCommand,      // system-specific admin command in `key`
  };
  Op op = Op::kGet;
  std::string key;
  std::string value;
  int64_t int_arg = 0;
  // Probe flag used by the detector's user-defined checks: the caller knows
  // this key must exist, so a miss is a wrong result and the system raises
  // (and diagnoses) a fault instead of returning not-found.
  bool must_exist = false;
};

struct Response {
  Status status;
  std::string value;
  bool found = false;
};

// The per-run outcome the harness and detector exchange.
struct RunObservation {
  std::optional<FaultInfo> fault;
  uint64_t pm_used_bytes = 0;
  uint64_t item_count = 0;
};

// How a concurrent driver serializes Handle() calls against a system.
//   kCoarse  — one mutex around every request (the default; matches
//              memcached's cache_lock / Redis's single event loop).
//   kSharded — key-hashed lock stripes for key-local operations, with a
//              structural reader/writer gate so whole-table operations
//              (flush_all, admin commands, stats) still run exclusively.
// Systems opt in via SupportsShardedLocks(); for everything else kSharded
// silently behaves like an exclusive gate, so it is always safe to request.
enum class RequestLockMode {
  kCoarse,
  kSharded,
};

class PmSystemTarget {
 public:
  virtual ~PmSystemTarget() = default;

  virtual const std::string& name() const = 0;

  virtual PmemPool& pool() = 0;
  virtual Tracer& tracer() = 0;

  // Static metadata produced by the Arthas analyzer for this system.
  virtual const IrModule& ir_model() const = 0;
  virtual const GuidRegistry& guid_registry() const = 0;

  // Simulates process restart: drops volatile state, crashes the pool (only
  // durable bytes survive), re-runs pool recovery and the system's own
  // recovery function.
  virtual Status Restart() = 0;

  // Handles one client request. A fault during handling is reported in the
  // response's status and latched into last_fault().
  virtual Response Handle(const Request& request) = 0;

  // Most recent fault this "process" hit (cleared by Restart()).
  virtual const std::optional<FaultInfo>& last_fault() const = 0;

  // Number of logical items stored (for the data-loss metric).
  virtual uint64_t ItemCount() = 0;

  // Domain invariants ("number of items equals hashtable size" and the
  // like). Used by Table 4/Table 7 experiments.
  virtual Status CheckConsistency() = 0;

  // PM object payload offsets the recovery function touched in the last
  // Restart(); feeds the leak mitigation of paper Section 4.7 (the
  // pmem_recover_begin/end annotation analogue).
  virtual const std::vector<PmOffset>& RecoveryAccessedObjects() const = 0;

  // The system's coarse request lock. The mini systems' volatile structures
  // are single-threaded inside Handle() — like memcached's cache_lock or
  // Redis's single event loop — so a concurrent driver serializes Handle()
  // calls behind this one mutex (see harness/mt_driver.h). Single-threaded
  // callers may invoke Handle() directly without it.
  std::mutex& request_mutex() { return request_mutex_; }

  // ---- Sharded request locking (RequestLockMode::kSharded) ----
  //
  // Key-local operations take the structural gate shared plus one of
  // kNumRequestStripes stripe mutexes chosen by RequestStripeOf(key);
  // whole-table operations take the gate exclusive. Systems that opt in
  // (SupportsShardedLocks) must map every pair of keys that can share
  // volatile chain state to the same stripe — the mini systems stripe by
  // hash bucket, so two keys colliding into one bucket always serialize.
  // Stripes must also be no finer than persist granularity: Persist copies
  // whole rounded cache lines, so every byte a striped request may persist
  // must land in lines no other stripe concurrently writes. The mini
  // systems therefore group the kBucketsPerCacheLine adjacent 8-byte table
  // slots sharing one line into a single stripe (item payloads are already
  // safe: blocks of a cache line or more are line-aligned, and every item
  // the systems allocate is larger than the sub-line minimum block).
  static constexpr size_t kNumRequestStripes = 16;
  static constexpr size_t kBucketsPerCacheLine =
      kCacheLineSize / sizeof(PmOffset);

  // Allocation-size floor for objects that striped request paths persist.
  // Blocks of at least a cache line are line-aligned, so a persist of one
  // object never copies bytes of a neighbor; a sub-line block shares its
  // line with a buddy that may belong to another stripe.
  static constexpr size_t LineSafeSize(size_t size) {
    return size < kCacheLineSize ? kCacheLineSize : size;
  }

  RequestLockMode lock_mode() const {
    return lock_mode_.load(std::memory_order_relaxed);
  }
  void set_lock_mode(RequestLockMode mode) {
    lock_mode_.store(mode, std::memory_order_relaxed);
  }

  // True if this system's Handle() is safe under per-stripe concurrency for
  // key-local ops. Defaults to false: such systems run every request behind
  // the exclusive gate even in kSharded mode (correct, just not parallel).
  virtual bool SupportsShardedLocks() const { return false; }

  // Stripe for a key. Overrides must be stable while the structural gate is
  // held shared (the mini systems derive it from the current bucket index,
  // which only structural operations — run exclusively — can change).
  virtual size_t RequestStripeOf(const std::string& key) const {
    return std::hash<std::string>{}(key) % kNumRequestStripes;
  }

  // Deferred structural work (e.g. memcached's hashtable expansion): a
  // striped request that notices the trigger condition calls
  // RequestMaintenance() instead of restructuring under a shared gate; the
  // next RequestGuard acquisition (or an explicit drain) runs
  // RunPendingMaintenance() under the exclusive gate.
  void RequestMaintenance() {
    maintenance_pending_.store(true, std::memory_order_release);
  }
  virtual void RunPendingMaintenance() {}
  void DrainPendingMaintenance() {
    bool expected = true;
    if (maintenance_pending_.compare_exchange_strong(
            expected, false, std::memory_order_acq_rel)) {
      std::unique_lock<std::shared_mutex> gate(structural_gate_);
      RunPendingMaintenance();
    }
  }

  // True for ops whose effects are confined to one key's bucket chain (plus
  // counters the system guards internally); everything else — flush_all,
  // list ops, stats, admin commands — restructures or scans shared state
  // and runs behind the exclusive gate.
  bool ShardableOp(const Request& request) const {
    if (!SupportsShardedLocks()) {
      return false;
    }
    switch (request.op) {
      case Request::Op::kPut:
      case Request::Op::kGet:
      case Request::Op::kDelete:
      case Request::Op::kAppend:
      case Request::Op::kHold:
      case Request::Op::kRelease:
        return true;
      default:
        return false;
    }
  }

  std::shared_mutex& structural_gate() { return structural_gate_; }
  std::mutex& request_stripe(size_t i) { return request_stripes_[i]; }

  // ---- Consistency-substrate section demarcation ----
  //
  // The attached substrate (src/substrate/) sees one failure-atomic section
  // per outermost request scope: RequestGuard and PmSystemBase::Handle both
  // call Enter/ExitSection, and a thread-local depth count collapses the
  // nesting so exactly one SectionBegin/SectionEnd pair reaches the
  // substrate per request. RaiseFault marks the current section aborted —
  // the simulated process-death point — turning the close into
  // SectionAbort. All three are thread-safe; set_substrate is
  // caller-serialized (attach while quiesced, like device observers).
  void set_substrate(ConsistencySubstrate* substrate) {
    substrate_.store(substrate, std::memory_order_release);
  }
  ConsistencySubstrate* substrate() const {
    return substrate_.load(std::memory_order_acquire);
  }

  void EnterSection();
  void ExitSection();
  void MarkSectionAborted();

 private:
  std::mutex request_mutex_;
  std::atomic<RequestLockMode> lock_mode_{RequestLockMode::kCoarse};
  std::shared_mutex structural_gate_;
  std::array<std::mutex, kNumRequestStripes> request_stripes_;
  std::atomic<bool> maintenance_pending_{false};
  std::atomic<ConsistencySubstrate*> substrate_{nullptr};
};

// RAII section demarcation for one request scope; nests freely with
// RequestGuard (the inner scope is depth-counted away).
class SectionScope {
 public:
  explicit SectionScope(PmSystemTarget& system) : system_(system) {
    system_.EnterSection();
  }
  ~SectionScope() { system_.ExitSection(); }

  SectionScope(const SectionScope&) = delete;
  SectionScope& operator=(const SectionScope&) = delete;

 private:
  PmSystemTarget& system_;
};

// RAII acquisition of whatever locks one Handle() call needs under the
// system's current lock mode. Construct, call Handle(), destroy.
//
// kSharded order: drain any deferred maintenance (exclusive gate, released
// before proceeding), then gate-shared + stripe for shardable ops or
// gate-exclusive for the rest. The stripe index is computed after the
// shared gate is held, so the bucket geometry it derives from is stable.
// The guard also demarcates the failure-atomic section under FASE-style
// substrates: lock acquisition opens the section, release closes it, so the
// section boundary is exactly the critical section (Atlas's rule).
class RequestGuard {
 public:
  // Out-of-line (system_base.cc): the acquisitions are profiled as
  // lock-wait time, and this header is included too widely to pull in
  // obs/profiler.h.
  RequestGuard(PmSystemTarget& system, const Request& request);
  // Closes the section before the member unlocks run, so the section never
  // outlives the locks that made it atomic.
  ~RequestGuard();

  RequestGuard(const RequestGuard&) = delete;
  RequestGuard& operator=(const RequestGuard&) = delete;

 private:
  PmSystemTarget& system_;
  std::unique_lock<std::mutex> coarse_;
  std::unique_lock<std::shared_mutex> exclusive_;
  std::shared_lock<std::shared_mutex> shared_;
  std::unique_lock<std::mutex> stripe_;  // declared last: released first
};

}  // namespace arthas

#endif  // ARTHAS_SYSTEMS_PM_SYSTEM_H_
