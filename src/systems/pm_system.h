// Common interface every target PM system implements.
//
// The evaluation runs five PM systems (Memcached, Redis, Pelikan, PMEMKV,
// CCEH re-implemented as mini systems in src/systems). The harness drives
// them through this request/response interface, restarts them by crashing
// the PM pool and re-running recovery, and reads the failure surface the
// Arthas detector monitors (crash signal, exit code, fault instruction,
// stack digest, PM usage).
//
// A real deployment would observe a separate process; here the "process" is
// the system object plus all volatile state, and "process death" is
// modelled by destroying volatile state and calling Restart().

#ifndef ARTHAS_SYSTEMS_PM_SYSTEM_H_
#define ARTHAS_SYSTEMS_PM_SYSTEM_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "ir/ir.h"
#include "pmem/pool.h"
#include "trace/guid_registry.h"
#include "trace/tracer.h"

namespace arthas {

// How a failed run manifested (paper Section 4.3: crash, assertion failure,
// hang, memory leak, wrong results; plus out-of-space for persistent leaks).
enum class FailureKind {
  kNone,
  kCrash,        // segfault-equivalent
  kAssertion,    // server panic / assertion failure
  kHang,         // infinite loop / deadlock
  kWrongResult,  // user-visible incorrect behaviour (incl. data loss)
  kOutOfSpace,   // persistent pool exhausted
  kLeak,         // PM usage monitor tripped
};

const char* FailureKindName(FailureKind kind);

// What the detector retrieves about a failure (paper Section 4.3: "faulting
// instruction, exit code, stack trace, memory usage").
struct FaultInfo {
  FailureKind kind = FailureKind::kNone;
  Guid fault_guid = kNoGuid;  // instruction where the failure manifested
  // Faulting PM access, when one exists (a crashing load/store reports it
  // via siginfo in a real deployment). kNullPmOffset when unknown.
  PmOffset fault_address = kNullPmOffset;
  int exit_code = 0;
  std::string message;
  std::vector<std::string> stack;  // symbolic frames, innermost first
  uint64_t pm_used_bytes = 0;
};

// Request surface shared by the KV-style targets.
struct Request {
  enum class Op {
    kPut,
    kGet,
    kDelete,
    kAppend,       // Memcached/Pelikan append to an existing value
    kHold,         // take a reference on an item (refcount++)
    kRelease,      // drop a reference (refcount--)
    kFlushAll,     // Memcached flush_all (takes delay in int_arg)
    kListPush,     // Redis listpack append (value is the element)
    kListRead,     // Redis listpack read-back
    kStats,        // Pelikan stats command (subcommand in `key`)
    kCommand,      // system-specific admin command in `key`
  };
  Op op = Op::kGet;
  std::string key;
  std::string value;
  int64_t int_arg = 0;
  // Probe flag used by the detector's user-defined checks: the caller knows
  // this key must exist, so a miss is a wrong result and the system raises
  // (and diagnoses) a fault instead of returning not-found.
  bool must_exist = false;
};

struct Response {
  Status status;
  std::string value;
  bool found = false;
};

// The per-run outcome the harness and detector exchange.
struct RunObservation {
  std::optional<FaultInfo> fault;
  uint64_t pm_used_bytes = 0;
  uint64_t item_count = 0;
};

class PmSystemTarget {
 public:
  virtual ~PmSystemTarget() = default;

  virtual const std::string& name() const = 0;

  virtual PmemPool& pool() = 0;
  virtual Tracer& tracer() = 0;

  // Static metadata produced by the Arthas analyzer for this system.
  virtual const IrModule& ir_model() const = 0;
  virtual const GuidRegistry& guid_registry() const = 0;

  // Simulates process restart: drops volatile state, crashes the pool (only
  // durable bytes survive), re-runs pool recovery and the system's own
  // recovery function.
  virtual Status Restart() = 0;

  // Handles one client request. A fault during handling is reported in the
  // response's status and latched into last_fault().
  virtual Response Handle(const Request& request) = 0;

  // Most recent fault this "process" hit (cleared by Restart()).
  virtual const std::optional<FaultInfo>& last_fault() const = 0;

  // Number of logical items stored (for the data-loss metric).
  virtual uint64_t ItemCount() = 0;

  // Domain invariants ("number of items equals hashtable size" and the
  // like). Used by Table 4/Table 7 experiments.
  virtual Status CheckConsistency() = 0;

  // PM object payload offsets the recovery function touched in the last
  // Restart(); feeds the leak mitigation of paper Section 4.7 (the
  // pmem_recover_begin/end annotation analogue).
  virtual const std::vector<PmOffset>& RecoveryAccessedObjects() const = 0;

  // The system's coarse request lock. The mini systems' volatile structures
  // are single-threaded inside Handle() — like memcached's cache_lock or
  // Redis's single event loop — so a concurrent driver serializes Handle()
  // calls behind this one mutex (see harness/mt_driver.h). Single-threaded
  // callers may invoke Handle() directly without it.
  std::mutex& request_mutex() { return request_mutex_; }

 private:
  std::mutex request_mutex_;
};

}  // namespace arthas

#endif  // ARTHAS_SYSTEMS_PM_SYSTEM_H_
