#include "systems/system_base.h"

#include <cassert>

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/profiler.h"
#include "systems/pm_system.h"

namespace arthas {

RequestGuard::RequestGuard(PmSystemTarget& system, const Request& request) {
  if (system.lock_mode() == RequestLockMode::kCoarse) {
    ARTHAS_PROFILE(kLockWait);
    coarse_ = std::unique_lock<std::mutex>(system.request_mutex());
    return;
  }
  {
    // Deferred maintenance piggybacks on the next request; charge it as
    // bookkeeping, not lock wait (it does real structural work inside).
    ARTHAS_PROFILE(kBookkeeping);
    system.DrainPendingMaintenance();
  }
  ARTHAS_PROFILE(kLockWait);
  if (!system.ShardableOp(request)) {
    exclusive_ = std::unique_lock<std::shared_mutex>(system.structural_gate());
    return;
  }
  shared_ = std::shared_lock<std::shared_mutex>(system.structural_gate());
  stripe_ = std::unique_lock<std::mutex>(
      system.request_stripe(system.RequestStripeOf(request.key)));
}

PmSystemBase::PmSystemBase(std::string name, size_t pool_size)
    : name_(std::move(name)) {
  auto pool = PmemPool::Create(name_, pool_size);
  assert(pool.ok());
  pool_ = std::move(*pool);
}

void PmSystemBase::RaiseFault(FailureKind kind, Guid guid,
                              PmOffset fault_address, std::string message,
                              std::vector<std::string> stack) {
  FaultInfo fault;
  fault.kind = kind;
  fault.fault_guid = guid;
  fault.fault_address = fault_address;
  fault.exit_code = kind == FailureKind::kCrash     ? 139
                    : kind == FailureKind::kAssertion ? 134
                                                      : 0;
  fault.message = std::move(message);
  fault.stack = std::move(stack);
  fault.pm_used_bytes = pool_->stats().used_bytes;
  std::lock_guard<std::mutex> latch(fault_latch_);
  if (has_fault_.load(std::memory_order_relaxed)) {
    // A fault is already latched; the process is "dead". Drop this one.
    return;
  }
  ARTHAS_LOG(Info) << name_ << ": " << FailureKindName(kind) << " at guid "
                   << guid << ": " << fault.message;
  ARTHAS_FLIGHT_RECORD(obs::FrType::kFaultRaised, 0, fault.fault_address,
                       static_cast<uint64_t>(fault.exit_code), guid);
  fault_ = std::move(fault);
  has_fault_.store(true, std::memory_order_release);
}

}  // namespace arthas
