#include "systems/system_base.h"

#include <cassert>
#include <vector>

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/profiler.h"
#include "obs/reqtrace.h"
#include "substrate/substrate.h"
#include "systems/pm_system.h"

namespace arthas {

namespace {

// This thread's stack of open request scopes, one frame per system with an
// Enter/Exit imbalance. The depth count collapses nested demarcation sites
// (RequestGuard around Handle) so the substrate sees exactly one section
// per outermost scope. Frames for different systems interleave freely (a
// thread driving two systems keeps two frames).
struct SectionFrame {
  PmSystemTarget* system;
  uint32_t depth;
  uint64_t id;  // 0 = no substrate was attached when the scope opened
  bool aborted;
};
thread_local std::vector<SectionFrame> section_frames;

SectionFrame* FrameFor(PmSystemTarget* system) {
  for (auto it = section_frames.rbegin(); it != section_frames.rend(); ++it) {
    if (it->system == system) {
      return &*it;
    }
  }
  return nullptr;
}

}  // namespace

void PmSystemTarget::EnterSection() {
  // Request-trace section boundary (the plane collapses re-entrant depth).
  ARTHAS_REQTRACE_SECTION_ENTER();
  if (SectionFrame* frame = FrameFor(this)) {
    frame->depth++;
    return;
  }
  SectionFrame frame{this, 1, 0, false};
  if (ConsistencySubstrate* sub = substrate()) {
    frame.id = sub->NextSectionId();
    sub->SectionBegin(frame.id);
  }
  section_frames.push_back(frame);
}

void PmSystemTarget::ExitSection() {
  ARTHAS_REQTRACE_SECTION_EXIT();
  for (auto it = section_frames.rbegin(); it != section_frames.rend(); ++it) {
    if (it->system != this) {
      continue;
    }
    if (--it->depth > 0) {
      return;
    }
    const SectionFrame frame = *it;
    section_frames.erase(std::next(it).base());
    if (frame.id != 0) {
      if (ConsistencySubstrate* sub = substrate()) {
        if (frame.aborted) {
          sub->SectionAbort(frame.id);
        } else {
          sub->SectionEnd(frame.id);
        }
      }
    }
    return;
  }
}

void PmSystemTarget::MarkSectionAborted() {
  if (SectionFrame* frame = FrameFor(this)) {
    frame->aborted = true;
  }
}

RequestGuard::RequestGuard(PmSystemTarget& system, const Request& request)
    : system_(system) {
  if (system.lock_mode() == RequestLockMode::kCoarse) {
    {
      ARTHAS_PROFILE(kLockWait);
      coarse_ = std::unique_lock<std::mutex>(system.request_mutex());
    }
    system_.EnterSection();
    return;
  }
  {
    // Deferred maintenance piggybacks on the next request; charge it as
    // bookkeeping, not lock wait (it does real structural work inside).
    ARTHAS_PROFILE(kBookkeeping);
    system.DrainPendingMaintenance();
  }
  {
    ARTHAS_PROFILE(kLockWait);
    if (!system.ShardableOp(request)) {
      exclusive_ =
          std::unique_lock<std::shared_mutex>(system.structural_gate());
    } else {
      shared_ = std::shared_lock<std::shared_mutex>(system.structural_gate());
      stripe_ = std::unique_lock<std::mutex>(
          system.request_stripe(system.RequestStripeOf(request.key)));
    }
  }
  system_.EnterSection();
}

RequestGuard::~RequestGuard() {
  // Runs before the member unlocks: the section closes while the locks
  // that made it atomic are still held.
  system_.ExitSection();
}

PmSystemBase::PmSystemBase(std::string name, size_t pool_size)
    : name_(std::move(name)) {
  auto pool = PmemPool::Create(name_, pool_size);
  assert(pool.ok());
  pool_ = std::move(*pool);
}

Status PmSystemBase::Restart() {
  fault_.reset();
  has_fault_.store(false, std::memory_order_release);
  recovery_accessed_.clear();
  ARTHAS_RETURN_IF_ERROR(pool_->CrashAndRecover());
  // The substrate recovers after the pool (its rollback must see a
  // consistent heap to step around metadata) and before the system's
  // recovery function (which must see the rolled-back state).
  if (ConsistencySubstrate* sub = substrate()) {
    ARTHAS_RETURN_IF_ERROR(sub->Recover());
  }
  return Recover();
}

void PmSystemBase::RaiseFault(FailureKind kind, Guid guid,
                              PmOffset fault_address, std::string message,
                              std::vector<std::string> stack) {
  FaultInfo fault;
  fault.kind = kind;
  fault.fault_guid = guid;
  fault.fault_address = fault_address;
  fault.exit_code = kind == FailureKind::kCrash     ? 139
                    : kind == FailureKind::kAssertion ? 134
                                                      : 0;
  fault.message = std::move(message);
  fault.stack = std::move(stack);
  fault.pm_used_bytes = pool_->stats().used_bytes;
  std::lock_guard<std::mutex> latch(fault_latch_);
  if (has_fault_.load(std::memory_order_relaxed)) {
    // A fault is already latched; the process is "dead". Drop this one.
    return;
  }
  ARTHAS_LOG(Info) << name_ << ": " << FailureKindName(kind) << " at guid "
                   << guid << ": " << fault.message;
  ARTHAS_FLIGHT_RECORD(obs::FrType::kFaultRaised, 0, fault.fault_address,
                       static_cast<uint64_t>(fault.exit_code), guid);
  fault_ = std::move(fault);
  has_fault_.store(true, std::memory_order_release);
  // This is the simulated process-death point: the section that was running
  // never commits, so a FASE-style substrate rolls it back at recovery.
  MarkSectionAborted();
}

}  // namespace arthas
