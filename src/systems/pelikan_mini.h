// pelikan_mini: Twitter's Pelikan cache (seg/slab storage + admin stats),
// scaled down and ported to PM.
//
// Armed faults (paper Table 2):
//   f10 kF10ValueLenOverflow — a put with a value longer than the 8-bit
//       header field wraps the stored length; the copy uses the real length
//       and overruns the block into its physical neighbor (segfault on the
//       next access through the clobbered region).
//   f11 kF11NullStats — the stats-reset path nulls the persistent detail
//       pointer instead of the counters behind it; the next stats read
//       dereferences the null pointer (segfault).

#ifndef ARTHAS_SYSTEMS_PELIKAN_MINI_H_
#define ARTHAS_SYSTEMS_PELIKAN_MINI_H_

#include <cstdint>
#include <string>

#include "systems/system_base.h"

namespace arthas {

// GUIDs 4100-4199.
constexpr Guid kGuidPlItemInit = 4101;    // item header + data store
constexpr Guid kGuidPlBucketStore = 4102;  // hash bucket store
constexpr Guid kGuidPlCountStore = 4103;   // root.count store
constexpr Guid kGuidPlItemAccess = 4104;   // item header load (fault site)
constexpr Guid kGuidPlDetailStore = 4105;  // stats.detail pointer store
constexpr Guid kGuidPlStatsRead = 4106;    // stats detail load (fault site)
constexpr Guid kGuidPlStatsBump = 4107;    // stats counter store
constexpr Guid kGuidPlLookupMiss = 4108;   // wrongful-miss site

struct PelikanOptions {
  size_t pool_size = 1 * 1024 * 1024;
  uint64_t buckets = 64;
  uint64_t chain_walk_budget = 4096;
};

class PelikanMini : public PmSystemBase {
 public:
  using Options = PelikanOptions;

  explicit PelikanMini(Options options = {});

  Response HandleRequest(const Request& request) override;
  uint64_t ItemCount() override;
  Status CheckConsistency() override;

  // Sharded request locking: key ops touch one bucket chain; the count/sets
  // counters are guarded by counter_mutex_. kStats stays exclusive.
  bool SupportsShardedLocks() const override { return true; }
  size_t RequestStripeOf(const std::string& key) const override {
    // Slot-line granular: all table slots sharing a cache line map to one
    // stripe, since persisting any slot copies the whole rounded line.
    return BucketIndex(key) / kBucketsPerCacheLine % kNumRequestStripes;
  }

 protected:
  Status Recover() override;

 private:
  struct PelRoot;
  struct PelItem;
  struct PelStatsDetail;

  PelRoot* root();
  uint64_t BucketIndex(const std::string& key) const;
  PmOffset* BucketSlot(uint64_t index);
  PelItem* ItemAt(PmOffset off);
  PmOffset Find(const std::string& key);

  Response Put(const Request& request);
  Response Get(const Request& request);
  Response Delete(const Request& request);
  Response Stats(const Request& request);

  Options options_;
  Oid root_oid_;
  void BuildIrModel();
};

}  // namespace arthas

#endif  // ARTHAS_SYSTEMS_PELIKAN_MINI_H_
