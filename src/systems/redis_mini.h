// redis_mini: a persistent-memory port of Redis' core, scaled down.
//
// Reproduces the mechanisms behind faults f6-f8 (paper Table 2): a chained
// dict whose entries and refcounted value objects (robj) live in PM, the
// listpack compact list encoding, object sharing, a lazy-free path, and the
// slowlog ring.
//
// Armed faults:
//   f6 kF6ListpackOverflow — the encoding function corrupts the listpack
//      size header once the listpack grows past 4096 bytes; the insertion
//      succeeds but the next read walks past the buffer (paper Section 2.3).
//   f7 kF7RefcountLogicBug — a delete path decrements a shared object's
//      refcount twice and poisons the object header (lazy-free marker);
//      accessing the object through its other owner panics.
//   f8 kF8SlowlogLeak     — slowlog pruning unlinks the oldest entry but
//      forgets to free it; the pool slowly fills with unreachable objects.

#ifndef ARTHAS_SYSTEMS_REDIS_MINI_H_
#define ARTHAS_SYSTEMS_REDIS_MINI_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "systems/system_base.h"

namespace arthas {

// GUIDs of redis_mini's PM instructions (2100-2199).
constexpr Guid kGuidRdEntryStore = 2101;     // dict entry init store
constexpr Guid kGuidRdBucketStore = 2102;    // dict bucket head store
constexpr Guid kGuidRdValStore = 2103;       // entry.val_obj store
constexpr Guid kGuidRdObjInit = 2105;        // robj init (header + data)
constexpr Guid kGuidRdRefDecr = 2106;        // robj.refcount decrement
constexpr Guid kGuidRdTombstone = 2107;      // lazy-free poison store
constexpr Guid kGuidRdCountStore = 2108;     // root.item_count store
constexpr Guid kGuidRdLpHeader = 2109;       // listpack size header store
constexpr Guid kGuidRdLpElem = 2110;         // listpack element bytes store
constexpr Guid kGuidRdLpRead = 2111;         // lpNext read (fault site, f6)
constexpr Guid kGuidRdAssert = 2112;         // refcount assert (fault, f7)
constexpr Guid kGuidRdSlowlogLink = 2113;    // slowlog head store
constexpr Guid kGuidRdSlowlogAlloc = 2114;   // slowlog entry allocation
constexpr Guid kGuidRdLookupMiss = 2115;     // wrongful-miss site
constexpr Guid kGuidRdRefIncr = 2116;        // robj.refcount increment

struct RedisOptions {
  size_t pool_size = 1 * 1024 * 1024;
  uint64_t dict_buckets = 64;
  uint64_t slowlog_max = 8;
  size_t slow_threshold = 64;     // values this large are "slow" commands
  size_t listpack_limit = 4096;   // the f6 boundary
};

class RedisMini : public PmSystemBase {
 public:
  using Options = RedisOptions;

  explicit RedisMini(Options options = {});

  Response HandleRequest(const Request& request) override;
  uint64_t ItemCount() override;
  Status CheckConsistency() override;

  // Makes `alias_key` share `key`'s value object (Redis shared objects).
  Status Share(const std::string& key, const std::string& alias_key);

  // Sharded request locking: kPut/kGet/kDelete are confined to one dict
  // chain (list ops stay exclusive — see ShardableOp). The op counter,
  // lazy-free queue, slowlog and item count are cross-key state, guarded by
  // counter_mutex_.
  bool SupportsShardedLocks() const override { return true; }
  size_t RequestStripeOf(const std::string& key) const override {
    // Slot-line granular: all dict slots sharing a cache line map to one
    // stripe, since persisting any slot copies the whole rounded line.
    return BucketIndex(key) / kBucketsPerCacheLine % kNumRequestStripes;
  }

 protected:
  Status Recover() override;

 private:
  struct RedisRoot;
  struct DictEntry;
  struct RedisObj;
  struct SlowlogEntry;

  RedisRoot* root();
  uint64_t BucketIndex(const std::string& key) const;
  PmOffset* BucketSlot(uint64_t index);
  PmOffset FindEntry(const std::string& key);
  RedisObj* ObjAt(PmOffset off);
  DictEntry* EntryAt(PmOffset off);

  Response Put(const Request& request);
  Response Get(const Request& request);
  Response Delete(const Request& request);
  Response ListPush(const Request& request);
  Response ListRead(const Request& request);

  Result<Oid> AllocObj(uint32_t type, uint32_t capacity);
  void SlowlogAdd(const std::string& arg);

  // Queues a no-longer-referenced value object for the background lazy-free
  // worker (Redis frees large objects off the main thread).
  void LazyFree(PmOffset obj);
  void ProcessLazyFreeQueue();

  Options options_;
  Oid root_oid_;
  // Volatile lazy-free queue: (enqueue op number, object offset).
  std::vector<std::pair<uint64_t, PmOffset>> lazy_free_queue_;
  uint64_t op_counter_ = 0;
  void BuildIrModel();
};

}  // namespace arthas

#endif  // ARTHAS_SYSTEMS_REDIS_MINI_H_
