#include "systems/pelikan_mini.h"

#include <cassert>
#include <cstring>

#include "common/logging.h"

namespace arthas {

namespace {
constexpr PmOffset kPlNull = 0;
constexpr uint64_t kDetailMagic = 0x9e11ca11ULL;  // "pelican"

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
  }
  return h;
}
}  // namespace

struct PelikanMini::PelRoot {
  PmOffset ht;
  uint64_t nbuckets;
  uint64_t count;
  PmOffset stats_detail;  // persistent detailed-metrics block
  uint64_t gets;
  uint64_t sets;
};

struct PelikanMini::PelItem {
  PmOffset next;
  uint8_t klen;
  uint8_t vlen;
  uint16_t pad;
  uint32_t pad2;
  char data[];
};

struct PelikanMini::PelStatsDetail {
  uint64_t magic;
  uint64_t hits;
  uint64_t misses;
};

PelikanMini::PelikanMini(Options options)
    : PmSystemBase("pelikan_mini", options.pool_size), options_(options) {
  auto root_res = pool_->Root(sizeof(PelRoot));
  assert(root_res.ok());
  root_oid_ = *root_res;
  PelRoot* r = root();
  if (r->ht == kPlNull) {
    auto table = pool_->Zalloc(options_.buckets * sizeof(PmOffset));
    assert(table.ok());
    r->ht = table->off;
    r->nbuckets = options_.buckets;
    auto detail = pool_->Zalloc(LineSafeSize(sizeof(PelStatsDetail)));
    assert(detail.ok());
    auto* d = pool_->Direct<PelStatsDetail>(*detail);
    d->magic = kDetailMagic;
    pool_->Persist(*detail, 0, sizeof(PelStatsDetail));
    r->stats_detail = detail->off;
    pool_->PersistObject<PelRoot>(root_oid_);
  }
  BuildIrModel();
}

PelikanMini::PelRoot* PelikanMini::root() {
  return pool_->Direct<PelRoot>(root_oid_);
}

uint64_t PelikanMini::BucketIndex(const std::string& key) const {
  const auto* r =
      const_cast<PelikanMini*>(this)->pool_->Direct<PelRoot>(root_oid_);
  return Fnv1a(key) % r->nbuckets;
}

PmOffset* PelikanMini::BucketSlot(uint64_t index) {
  return pool_->Direct<PmOffset>(Oid{root()->ht}) + index;
}

PelikanMini::PelItem* PelikanMini::ItemAt(PmOffset off) {
  if (off == kPlNull || off + sizeof(PelItem) > pool_->device().size()) {
    return nullptr;
  }
  return reinterpret_cast<PelItem*>(pool_->device().Live(off));
}

PmOffset PelikanMini::Find(const std::string& key) {
  PmOffset cur = *BucketSlot(BucketIndex(key));
  uint64_t budget = options_.chain_walk_budget;
  while (cur != kPlNull) {
    PelItem* item = ItemAt(cur);
    if (item == nullptr) {
      RaiseFault(FailureKind::kCrash, kGuidPlItemAccess, cur,
                 "invalid item offset in chain", {"hashtable_get"});
      return kPlNull;
    }
    // An item must live inside an allocated block; a clobbered neighbor
    // header turns this walk into a wild access (the f10 segfault).
    auto usable = pool_->UsableSize(Oid{cur});
    if (!usable.ok() ||
        sizeof(PelItem) + item->klen + item->vlen > *usable + 1) {
      RaiseFault(FailureKind::kCrash, kGuidPlItemAccess, cur,
                 "item header corrupt (block smashed)",
                 {"item_check", "hashtable_get"});
      return kPlNull;
    }
    if (budget-- == 0) {
      RaiseFault(FailureKind::kHang, kGuidPlItemAccess, cur, "chain cycle",
                 {"hashtable_get"});
      return kPlNull;
    }
    if (item->klen == key.size() &&
        std::memcmp(item->data, key.data(), key.size()) == 0) {
      return cur;
    }
    cur = item->next;
  }
  return kPlNull;
}

Response PelikanMini::HandleRequest(const Request& request) {
  Response response;
  if (HasFault()) {
    response.status = Internal("server unavailable");
    return response;
  }
  switch (request.op) {
    case Request::Op::kPut:
      return Put(request);
    case Request::Op::kGet:
      return Get(request);
    case Request::Op::kDelete:
      return Delete(request);
    case Request::Op::kStats:
      return Stats(request);
    default:
      response.status = Unimplemented("op not supported by pelikan_mini");
      return response;
  }
}

Response PelikanMini::Put(const Request& request) {
  Response response;
  if (request.key.size() > 200) {
    response.status = InvalidArgument("key too large");
    return response;
  }
  const size_t real_vlen = request.value.size();
  if (!FaultArmed(FaultId::kF10ValueLenOverflow) && real_vlen > 255) {
    response.status = InvalidArgument("value too large");
    return response;
  }
  PelRoot* r = root();
  const PmOffset existing = Find(request.key);
  if (HasFault()) {
    response.status = Internal(fault_->message);
    return response;
  }
  if (existing != kPlNull) {
    // Update in place when the new value fits the item's block.
    PelItem* item = ItemAt(existing);
    auto usable = pool_->UsableSize(Oid{existing});
    if (usable.ok() && real_vlen <= 255 &&
        sizeof(PelItem) + item->klen + real_vlen <= *usable) {
      std::memcpy(item->data + item->klen, request.value.data(), real_vlen);
      item->vlen = static_cast<uint8_t>(real_vlen);
      TracedPersist(Oid{existing}, 0,
                    sizeof(PelItem) + item->klen + real_vlen, kGuidPlItemInit);
      {
        std::lock_guard<std::mutex> counters(counter_mutex_);
        r->sets++;
      }
      response.status = OkStatus();
      return response;
    }
    Request del = request;
    del.op = Request::Op::kDelete;
    Delete(del);
  }
  // f10: the stored length is 8-bit; the allocation sizes the block from the
  // wrapped length while the copy writes the real bytes.
  const uint8_t stored_vlen = static_cast<uint8_t>(real_vlen);
  auto oid = pool_->Zalloc(
      LineSafeSize(sizeof(PelItem) + request.key.size() + stored_vlen));
  if (!oid.ok()) {
    RaiseFault(FailureKind::kOutOfSpace, kGuidPlItemInit, kNullPmOffset,
               "item allocation failed", {"item_alloc"});
    response.status = oid.status();
    return response;
  }
  PelItem* item = pool_->Direct<PelItem>(*oid);
  item->klen = static_cast<uint8_t>(request.key.size());
  item->vlen = stored_vlen;
  std::memcpy(item->data, request.key.data(), request.key.size());
  std::memcpy(item->data + request.key.size(), request.value.data(),
              real_vlen);
  TracedPersist(*oid, 0, sizeof(PelItem) + request.key.size() + real_vlen,
                kGuidPlItemInit);
  const uint64_t index = BucketIndex(request.key);
  item->next = *BucketSlot(index);
  *BucketSlot(index) = oid->off;
  TracedPersist(*oid, offsetof(PelItem, next), sizeof(PmOffset),
                kGuidPlItemInit);
  TracedPersistRange(r->ht + index * sizeof(PmOffset), sizeof(PmOffset),
                     kGuidPlBucketStore);
  {
    // Persist inside the counter section: the media copy reads the counter's
    // whole cache line, so it must not overlap another stripe's increment.
    std::lock_guard<std::mutex> counters(counter_mutex_);
    r->count++;
    r->sets++;
    TracedPersist(root_oid_, offsetof(PelRoot, count), sizeof(uint64_t),
                  kGuidPlCountStore);
  }
  response.status = OkStatus();
  return response;
}

Response PelikanMini::Get(const Request& request) {
  Response response;
  const PmOffset off = Find(request.key);
  if (HasFault()) {
    response.status = Internal(fault_->message);
    return response;
  }
  if (off == kPlNull) {
    if (request.must_exist) {
      RaiseFault(FailureKind::kWrongResult, kGuidPlLookupMiss,
                 root()->ht + BucketIndex(request.key) * sizeof(PmOffset),
                 "linked item missing", {"hashtable_get"});
      response.status = Internal(fault_->message);
      return response;
    }
    response.found = false;
    response.status = OkStatus();
    return response;
  }
  PelItem* item = ItemAt(off);
  response.found = true;
  response.value.assign(item->data + item->klen, item->vlen);
  response.status = OkStatus();
  return response;
}

Response PelikanMini::Delete(const Request& request) {
  Response response;
  PelRoot* r = root();
  const uint64_t index = BucketIndex(request.key);
  PmOffset prev = kPlNull;
  PmOffset cur = *BucketSlot(index);
  uint64_t budget = options_.chain_walk_budget;
  while (cur != kPlNull && budget-- > 0) {
    PelItem* item = ItemAt(cur);
    if (item == nullptr) {
      break;
    }
    if (item->klen == request.key.size() &&
        std::memcmp(item->data, request.key.data(), request.key.size()) == 0) {
      if (prev == kPlNull) {
        *BucketSlot(index) = item->next;
        TracedPersistRange(r->ht + index * sizeof(PmOffset),
                           sizeof(PmOffset), kGuidPlBucketStore);
      } else {
        ItemAt(prev)->next = item->next;
        TracedPersist(Oid{prev}, offsetof(PelItem, next), sizeof(PmOffset),
                      kGuidPlItemInit);
      }
      (void)pool_->Free(Oid{cur});
      {
        std::lock_guard<std::mutex> counters(counter_mutex_);
        r->count--;
        TracedPersist(root_oid_, offsetof(PelRoot, count), sizeof(uint64_t),
                      kGuidPlCountStore);
      }
      response.found = true;
      response.status = OkStatus();
      return response;
    }
    prev = cur;
    cur = item->next;
  }
  response.found = false;
  response.status = OkStatus();
  return response;
}

Response PelikanMini::Stats(const Request& request) {
  Response response;
  PelRoot* r = root();
  if (request.key == "reset") {
    if (FaultArmed(FaultId::kF11NullStats)) {
      // Bug: resets the detail *pointer* instead of the counters behind it.
      r->stats_detail = kPlNull;
      TracedPersist(root_oid_, offsetof(PelRoot, stats_detail),
                    sizeof(PmOffset), kGuidPlDetailStore);
    } else {
      auto* d = pool_->Direct<PelStatsDetail>(Oid{r->stats_detail});
      d->hits = 0;
      d->misses = 0;
      TracedPersistRange(r->stats_detail, sizeof(PelStatsDetail),
                         kGuidPlStatsBump);
    }
    response.status = OkStatus();
    return response;
  }
  // "show": dereference the detail block.
  if (r->stats_detail == kPlNull ||
      pool_->Direct<PelStatsDetail>(Oid{r->stats_detail})->magic !=
          kDetailMagic) {
    RaiseFault(FailureKind::kCrash, kGuidPlStatsRead,
               root_oid_.off + offsetof(PelRoot, stats_detail),
               "null/garbage stats detail pointer dereferenced",
               {"admin_stats", "core_admin"});
    response.status = Internal(fault_->message);
    return response;
  }
  auto* d = pool_->Direct<PelStatsDetail>(Oid{r->stats_detail});
  d->hits++;
  TracedPersistRange(r->stats_detail + offsetof(PelStatsDetail, hits),
                     sizeof(uint64_t), kGuidPlStatsBump);
  response.value = "gets=" + std::to_string(r->gets) +
                   " sets=" + std::to_string(r->sets) +
                   " hits=" + std::to_string(d->hits);
  response.found = true;
  response.status = OkStatus();
  return response;
}

uint64_t PelikanMini::ItemCount() { return root()->count; }

Status PelikanMini::CheckConsistency() {
  ARTHAS_RETURN_IF_ERROR(pool_->CheckIntegrity());
  PelRoot* r = root();
  if (r->stats_detail == kPlNull) {
    return Corruption("stats detail pointer is null");
  }
  uint64_t reachable = 0;
  for (uint64_t i = 0; i < r->nbuckets; i++) {
    PmOffset cur = *BucketSlot(i);
    uint64_t budget = options_.chain_walk_budget;
    while (cur != kPlNull) {
      if (budget-- == 0) {
        return Corruption("chain cycle");
      }
      PelItem* item = ItemAt(cur);
      if (item == nullptr) {
        return Corruption("chain points outside pool");
      }
      auto usable = pool_->UsableSize(Oid{cur});
      if (!usable.ok() ||
          sizeof(PelItem) + item->klen + item->vlen > *usable + 1) {
        return Corruption("item larger than its block");
      }
      reachable++;
      cur = item->next;
    }
  }
  if (reachable != r->count) {
    return Corruption("count mismatch");
  }
  return OkStatus();
}

Status PelikanMini::Recover() {
  PelRoot* r = root();
  RecoveryTouch(r->ht);
  uint64_t reachable = 0;
  if (r->stats_detail != kPlNull) {
    RecoveryTouch(r->stats_detail);
  }
  for (uint64_t i = 0; i < r->nbuckets; i++) {
    PmOffset cur = *BucketSlot(i);
    uint64_t budget = options_.chain_walk_budget;
    while (cur != kPlNull) {
      PelItem* item = ItemAt(cur);
      if (item == nullptr) {
        RaiseFault(FailureKind::kCrash, kGuidPlItemAccess, cur,
                   "recovery hit invalid item", {"seg_recover"});
        return OkStatus();
      }
      auto usable = pool_->UsableSize(Oid{cur});
      if (!usable.ok() ||
          sizeof(PelItem) + item->klen + item->vlen > *usable + 1) {
        RaiseFault(FailureKind::kCrash, kGuidPlItemAccess, cur,
                   "recovery hit corrupt item header", {"seg_recover"});
        return OkStatus();
      }
      if (budget-- == 0) {
        RaiseFault(FailureKind::kHang, kGuidPlItemAccess, cur,
                   "recovery chain cycle", {"seg_recover"});
        return OkStatus();
      }
      RecoveryTouch(cur);
      reachable++;
      cur = item->next;
    }
  }
  // The item count is derived metadata, recomputed by the recovery scan.
  r->count = reachable;
  pool_->device().PersistQuiet(root_oid_.off + offsetof(PelRoot, count),
                               sizeof(uint64_t));
  return OkStatus();
}

// --- IR model ----------------------------------------------------------------
//
// Root fields: 0 ht, 1 nbuckets, 2 count, 3 stats_detail, 4 gets, 5 sets.
// Item fields: 0 next, 1 klen, 2 vlen, 3 data.
void PelikanMini::BuildIrModel() {
  model_ = std::make_unique<IrModule>("pelikan_mini");
  IrModule& m = *model_;
  IrBuilder b(m);
  IrGlobal* g_root = m.CreateGlobal("g_root");

  IrFunction* init = m.CreateFunction("init", 0);
  {
    b.SetInsertPoint(init->CreateBlock("entry"));
    IrInstruction* r = b.PmMapFile("root");
    b.Store(r, g_root);
    IrInstruction* ht = b.PmAlloc(b.Const(512), "ht");
    b.Store(ht, b.FieldAddr(r, 0, "ht_addr"));
    IrInstruction* detail = b.PmAlloc(b.Const(24), "detail");
    b.Store(detail, b.FieldAddr(r, 3, "detail_addr"));
    b.Ret();
  }

  IrFunction* alloc_item = m.CreateFunction("alloc_item", 0);
  {
    b.SetInsertPoint(alloc_item->CreateBlock("entry"));
    IrInstruction* it = b.PmAlloc(b.Const(64), "it");
    b.Ret(it);
  }

  // fn put(k, v): the wrapped length + byte-cursor copy (f10 shape).
  IrFunction* put = m.CreateFunction("put", 2);
  {
    b.SetInsertPoint(put->CreateBlock("entry"));
    IrArgument* k = put->arg(0);
    IrArgument* v = put->arg(1);
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* it = b.Call(alloc_item, {}, "it");
    IrInstruction* vl = b.BinOp(v, b.Const(255), "vl");  // narrow length
    b.Store(vl, b.FieldAddr(it, 2, "vl_addr"));
    IrInstruction* cursor = b.IndexAddr(it, v, "cursor");
    b.Store(v, cursor, kGuidPlItemInit);
    IrInstruction* ht = b.Load(b.FieldAddr(r, 0, "ht_addr"), "ht");
    IrInstruction* slot = b.IndexAddr(ht, k, "slot");
    IrInstruction* head = b.Load(slot, "head");
    b.Store(head, b.FieldAddr(it, 0, "next_addr"));
    b.Store(it, slot, kGuidPlBucketStore);
    IrInstruction* cnt_addr = b.FieldAddr(r, 2, "cnt_addr");
    IrInstruction* cnt = b.Load(cnt_addr, "cnt");
    b.Store(b.BinOp(cnt, b.Const(1), "cnt1"), cnt_addr, kGuidPlCountStore);
    b.Ret();
  }

  // fn get(k): chain walk with the header validity check (f10 fault site).
  IrFunction* get = m.CreateFunction("get", 1);
  {
    IrBasicBlock* entry = get->CreateBlock("entry");
    IrBasicBlock* walk = get->CreateBlock("walk");
    IrBasicBlock* body = get->CreateBlock("body");
    IrBasicBlock* miss = get->CreateBlock("miss");
    b.SetInsertPoint(entry);
    IrArgument* k = get->arg(0);
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* ht = b.Load(b.FieldAddr(r, 0, "ht_addr"), "ht");
    IrInstruction* slot = b.IndexAddr(ht, k, "slot");
    IrInstruction* h0 = b.Load(slot, "h0");
    b.Br(walk);
    b.SetInsertPoint(walk);
    IrInstruction* it = b.Phi({h0}, "it");
    IrInstruction* c = b.Cmp(it, b.Const(0), "c");
    b.CondBr(c, body, miss);
    b.SetInsertPoint(body);
    IrInstruction* hdr = b.Load(b.FieldAddr(it, 1, "klen_addr"), "hdr");
    hdr->set_guid(kGuidPlItemAccess);
    IrInstruction* itn = b.Load(b.FieldAddr(it, 0, "next_addr"), "itn");
    b.Br(walk);
    it->AddOperand(itn);
    b.SetInsertPoint(miss);
    IrInstruction* mm = b.Load(b.IndexAddr(ht, k, "slot2"), "mm");
    mm->set_guid(kGuidPlLookupMiss);
    b.Ret(mm);
  }

  // fn stats_reset(): the f11 pointer-nulling store.
  IrFunction* stats_reset = m.CreateFunction("stats_reset", 0);
  {
    b.SetInsertPoint(stats_reset->CreateBlock("entry"));
    IrInstruction* r = b.Load(g_root, "r");
    b.Store(b.Const(0), b.FieldAddr(r, 3, "detail_addr"), kGuidPlDetailStore);
    b.Ret();
  }

  // fn stats_show(): dereferences the detail pointer (f11 fault site).
  IrFunction* stats_show = m.CreateFunction("stats_show", 0);
  {
    b.SetInsertPoint(stats_show->CreateBlock("entry"));
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* d = b.Load(b.FieldAddr(r, 3, "detail_addr"), "d");
    d->set_guid(kGuidPlStatsRead);
    IrInstruction* hits_addr = b.FieldAddr(d, 1, "hits_addr");
    IrInstruction* hits = b.Load(hits_addr, "hits");
    b.Store(b.BinOp(hits, b.Const(1), "hits1"), hits_addr, kGuidPlStatsBump);
    b.Ret();
  }

  assert(model_->Verify().ok());
  for (const IrInstruction* inst : model_->AllInstructions()) {
    if (inst->guid() != kNoGuid) {
      (void)registry_.Register(inst->guid(), name_,
                               inst->block()->parent()->name() + ":" +
                                   inst->block()->name(),
                               inst->ToString());
    }
  }
}

}  // namespace arthas
