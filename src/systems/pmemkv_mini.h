// pmemkv_mini: Intel's PMEMKV (cmap engine) scaled down.
//
// Armed fault (f12, PMEMKV issue #7): client deletes unlink the entry from
// the concurrent hash map immediately (for latency) and queue the object
// for an asynchronous background free. If the process crashes before the
// background thread runs, the unlinked objects are never freed — a
// persistent memory leak that survives every restart and eventually
// exhausts the pool (paper Section 2.3).

#ifndef ARTHAS_SYSTEMS_PMEMKV_MINI_H_
#define ARTHAS_SYSTEMS_PMEMKV_MINI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "systems/system_base.h"

namespace arthas {

// GUIDs 5100-5199.
constexpr Guid kGuidKvEntryInit = 5101;    // entry init store
constexpr Guid kGuidKvBucketStore = 5102;  // bucket head store
constexpr Guid kGuidKvCountStore = 5103;   // root.count store
constexpr Guid kGuidKvAllocSite = 5104;    // entry allocation (leak site)
constexpr Guid kGuidKvLookupMiss = 5105;   // wrongful-miss site

struct PmemkvOptions {
  size_t pool_size = 1 * 1024 * 1024;
  uint64_t buckets = 64;
};

class PmemkvMini : public PmSystemBase {
 public:
  using Options = PmemkvOptions;

  explicit PmemkvMini(Options options = {});

  Response HandleRequest(const Request& request) override;
  uint64_t ItemCount() override;
  Status CheckConsistency() override;

  // Runs the asynchronous lazy-free worker once (frees queued objects).
  // With f12 armed this never gets the chance to run before the next
  // restart, which is the bug.
  void RunAsyncFreeWorker();

  size_t deferred_free_queue_size() const { return deferred_free_.size(); }

  // Sharded request locking: every op touches one bucket chain; the count
  // and the deferred-free queue are guarded by counter_mutex_.
  bool SupportsShardedLocks() const override { return true; }
  size_t RequestStripeOf(const std::string& key) const override {
    // Slot-line granular: all table slots sharing a cache line map to one
    // stripe, since persisting any slot copies the whole rounded line.
    return BucketIndex(key) / kBucketsPerCacheLine % kNumRequestStripes;
  }

 protected:
  Status Recover() override;

 private:
  struct KvRoot;
  struct KvEntry;

  KvRoot* root();
  uint64_t BucketIndex(const std::string& key) const;
  PmOffset* BucketSlot(uint64_t index);
  KvEntry* EntryAt(PmOffset off);

  Response Put(const Request& request);
  Response Get(const Request& request);
  Response Delete(const Request& request);

  Options options_;
  Oid root_oid_;
  // Volatile deferred-free queue (lost on restart — that is the point).
  std::vector<PmOffset> deferred_free_;
  void BuildIrModel();
};

}  // namespace arthas

#endif  // ARTHAS_SYSTEMS_PMEMKV_MINI_H_
