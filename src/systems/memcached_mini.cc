#include "systems/memcached_mini.h"

#include <cassert>
#include <cstring>

#include "common/logging.h"

namespace arthas {

namespace {
constexpr PmOffset kMcNull = 0;  // end-of-chain / absent (offset 0 is the
                                 // pool header, never an item payload)

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
  }
  return h;
}
}  // namespace

// Persistent root. Field placement matters for f5: `expanding` and
// `item_count` share the first cache line, so persisting the count also
// writes back a bit-flipped flag (clwb granularity), which is how the
// transient hardware fault becomes durable.
struct MemcachedMini::McRoot {
  PmOffset hashtable;      // offset of the bucket array payload
  uint64_t nbuckets;
  uint64_t flush_before;   // items created before this are expired
  uint64_t expanding;      // rehash-in-progress flag (f5 target)
  uint64_t item_count;
  PmOffset old_hashtable;  // valid while expanding
  uint64_t old_nbuckets;
};

// Persistent item. The PM port persists the entire structure, refcount
// included (paper Section 2.2 / 2.3).
struct MemcachedMini::McItem {
  PmOffset h_next;    // 0 = end of chain
  uint8_t refcount;
  uint8_t linked;
  uint8_t keylen;
  uint8_t vallen;
  uint32_t pad;
  int64_t created;
  char data[];        // key bytes then value bytes
};

MemcachedMini::MemcachedMini(Options options)
    : PmSystemBase("memcached_mini", options.pool_size), options_(options) {
  auto root_res = pool_->Root(sizeof(McRoot));
  assert(root_res.ok());
  root_oid_ = *root_res;
  McRoot* r = root();
  if (r->hashtable == kMcNull) {
    auto table = pool_->Zalloc(options_.hashtable_buckets * sizeof(PmOffset));
    assert(table.ok());
    r->hashtable = table->off;
    r->nbuckets = options_.hashtable_buckets;
    pool_->PersistObject<McRoot>(root_oid_);
  }
  BuildIrModel();
}

MemcachedMini::McRoot* MemcachedMini::root() {
  return pool_->Direct<McRoot>(root_oid_);
}

uint64_t MemcachedMini::BucketIndex(const std::string& key) const {
  const auto* r =
      const_cast<MemcachedMini*>(this)->pool_->Direct<McRoot>(root_oid_);
  return Fnv1a(key) % r->nbuckets;
}

PmOffset* MemcachedMini::BucketSlot(uint64_t index) {
  McRoot* r = root();
  auto* table = pool_->Direct<PmOffset>(Oid{r->hashtable});
  return table + index;
}

MemcachedMini::McItem* MemcachedMini::ItemAt(PmOffset off) {
  if (off == kMcNull || off + sizeof(McItem) > pool_->device().size()) {
    return nullptr;
  }
  return reinterpret_cast<McItem*>(pool_->device().Live(off));
}

std::string MemcachedMini::ItemKey(const McItem* item) const {
  return std::string(item->data, item->keylen);
}

PmOffset MemcachedMini::AssocFind(const std::string& key, Guid fault_site) {
  McRoot* r = root();
  PmOffset head;
  if (r->expanding != 0) {
    // Mid-rehash lookups consult the old table first (f5 makes this path
    // taken with a bogus old table: every lookup misses).
    if (r->old_hashtable == kMcNull) {
      return kMcNull;
    }
    const auto* old_table = pool_->Direct<PmOffset>(Oid{r->old_hashtable});
    head = old_table[Fnv1a(key) % r->old_nbuckets];
  } else {
    head = *BucketSlot(BucketIndex(key));
  }
  uint64_t budget = options_.chain_walk_budget;
  PmOffset cur = head;
  while (cur != kMcNull) {
    McItem* item = ItemAt(cur);
    if (item == nullptr) {
      RaiseFault(FailureKind::kCrash, kGuidMcItemAccess, cur,
                 "invalid item offset in hash chain",
                 {"do_item_get", "assoc_find", "process_get_command"});
      return kMcNull;
    }
    if (budget-- == 0) {
      RaiseFault(FailureKind::kHang, fault_site, cur /* h_next field */,
                 "hash chain walk exceeded budget (chain cycle)",
                 {"assoc_find", "process_get_command", "event_handler"});
      return kMcNull;
    }
    if (item->keylen == key.size() &&
        std::memcmp(item->data, key.data(), key.size()) == 0) {
      return cur;
    }
    cur = item->h_next;  // the f1 cycle makes this walk forever
  }
  return kMcNull;
}

Response MemcachedMini::HandleRequest(const Request& request) {
  Response response;
  if (HasFault()) {
    // The "process" is dead/hung; a real client would see no reply.
    response.status = Internal("server unavailable (" +
                               std::string(FailureKindName(fault_->kind)) +
                               ")");
    return response;
  }
  switch (request.op) {
    case Request::Op::kPut:
      return Put(request);
    case Request::Op::kGet:
      return Get(request);
    case Request::Op::kDelete:
      return Delete(request);
    case Request::Op::kAppend:
      return Append(request);
    case Request::Op::kHold:
      return Hold(request);
    case Request::Op::kRelease:
      return ReleaseRef(request);
    case Request::Op::kFlushAll:
      return FlushAll(request);
    default:
      response.status = Unimplemented("op not supported by memcached_mini");
      return response;
  }
}

Response MemcachedMini::Put(const Request& request) {
  Response response;
  if (request.key.size() > 200 || request.value.size() > 255) {
    response.status = InvalidArgument("key/value too large");
    return response;
  }
  McRoot* r = root();
  const PmOffset existing = AssocFind(request.key, kGuidMcAssocFind);
  if (HasFault()) {
    response.status = Internal(fault_->message);
    return response;
  }
  if (existing != kMcNull) {
    // Update in place when the new value fits, else delete + reinsert.
    McItem* item = ItemAt(existing);
    if (request.value.size() <= item->vallen) {
      std::memcpy(item->data + item->keylen, request.value.data(),
                  request.value.size());
      item->vallen = static_cast<uint8_t>(request.value.size());
      TracedPersist(Oid{existing}, 0,
                    sizeof(McItem) + item->keylen + item->vallen,
                    kGuidMcItemInit);
      response.status = OkStatus();
      return response;
    }
    Request del = request;
    del.op = Request::Op::kDelete;
    Delete(del);
  }

  const size_t total =
      sizeof(McItem) + request.key.size() + request.value.size();
  auto oid = pool_->Zalloc(LineSafeSize(total));
  if (!oid.ok()) {
    RaiseFault(FailureKind::kOutOfSpace, kGuidMcItemInit, kNullPmOffset,
               "item allocation failed: " + oid.status().ToString(),
               {"item_alloc", "process_update_command"});
    response.status = oid.status();
    return response;
  }
  McItem* item = pool_->Direct<McItem>(*oid);
  item->refcount = 1;
  item->linked = 1;
  item->keylen = static_cast<uint8_t>(request.key.size());
  item->vallen = static_cast<uint8_t>(request.value.size());
  item->created = now_;
  std::memcpy(item->data, request.key.data(), request.key.size());
  std::memcpy(item->data + request.key.size(), request.value.data(),
              request.value.size());
  TracedPersist(*oid, 0, total, kGuidMcItemInit);

  // Link into the chain. f3: a racy insert captured the chain head before a
  // concurrent insert updated it; using the stale head drops that insert's
  // item from the chain (lost update).
  const uint64_t index = BucketIndex(request.key);
  PmOffset* slot = BucketSlot(index);
  PmOffset head = *slot;
  if (race_window_ && stale_head_ != kMcNull && stale_bucket_ == index &&
      FaultArmed(FaultId::kF3HashtableLockRace)) {
    head = stale_head_;
    race_window_ = false;
    stale_head_ = kMcNull;
  } else if (race_window_ && stale_head_ == kMcNull) {
    // First insert in the window: remember the head it saw.
    stale_head_ = head == kMcNull ? kMcNull : head;
    stale_bucket_ = index;
    if (head == kMcNull) {
      // An empty chain cannot exhibit the lost update; keep waiting.
      stale_head_ = kMcNull;
    }
  }

  item->h_next = head;
  TracedPersist(*oid, offsetof(McItem, h_next), sizeof(PmOffset),
                kGuidMcHNextStore);
  *slot = oid->off;
  const PmOffset slot_addr =
      r->hashtable + index * sizeof(PmOffset);
  TracedPersistRange(slot_addr, sizeof(PmOffset), kGuidMcBucketStore);

  uint64_t count_now;
  {
    // The persist stays inside the counter section: the media copy reads the
    // counter's whole cache line, so it must not overlap another striped
    // request's increment (counter mutex ranks above the device stripes).
    std::lock_guard<std::mutex> counters(counter_mutex_);
    count_now = ++r->item_count;
    TracedPersist(root_oid_, offsetof(McRoot, item_count), sizeof(uint64_t),
                  kGuidMcCountStore);
  }

  // Grow the table when chains get long. Expansion relinks every chain, so
  // a striped request (shared gate) defers it to the next exclusive window
  // instead of restructuring in place.
  if (count_now > r->nbuckets * 2 && r->expanding == 0) {
    if (lock_mode() == RequestLockMode::kSharded) {
      RequestMaintenance();
    } else {
      MaybeExpand();
    }
  }
  response.status = OkStatus();
  return response;
}

void MemcachedMini::RunPendingMaintenance() {
  // Re-check the trigger under the exclusive gate: a drain may run after a
  // delete already brought the count back down.
  McRoot* r = root();
  if (r->item_count > r->nbuckets * 2 && r->expanding == 0) {
    MaybeExpand();
  }
}

void MemcachedMini::MaybeExpand() {
  McRoot* r = root();
  auto bigger = pool_->Zalloc(r->nbuckets * 2 * sizeof(PmOffset));
  if (!bigger.ok()) {
    return;  // soft: stay at the current size
  }
  r->expanding = 1;
  TracedPersist(root_oid_, offsetof(McRoot, expanding), sizeof(uint64_t),
                kGuidMcExpandStore);
  r->old_hashtable = r->hashtable;
  r->old_nbuckets = r->nbuckets;
  TracedPersist(root_oid_, offsetof(McRoot, old_hashtable),
                2 * sizeof(uint64_t), kGuidMcOldTableStore);

  const uint64_t new_buckets = r->nbuckets * 2;
  auto* new_table = pool_->Direct<PmOffset>(*bigger);
  const auto* old_table = pool_->Direct<PmOffset>(Oid{r->hashtable});
  for (uint64_t i = 0; i < r->nbuckets; i++) {
    PmOffset cur = old_table[i];
    while (cur != kMcNull) {
      McItem* item = ItemAt(cur);
      const PmOffset next = item->h_next;
      const uint64_t idx = Fnv1a(ItemKey(item)) % new_buckets;
      item->h_next = new_table[idx];
      TracedPersist(Oid{cur}, offsetof(McItem, h_next), sizeof(PmOffset),
                    kGuidMcHNextStore);
      new_table[idx] = cur;
      cur = next;
    }
  }
  TracedPersistRange(bigger->off, new_buckets * sizeof(PmOffset),
                     kGuidMcBucketStore);
  const PmOffset old_table_off = r->hashtable;
  r->hashtable = bigger->off;
  r->nbuckets = new_buckets;
  TracedPersist(root_oid_, offsetof(McRoot, hashtable), 2 * sizeof(uint64_t),
                kGuidMcTableStore);
  r->expanding = 0;
  TracedPersist(root_oid_, offsetof(McRoot, expanding), sizeof(uint64_t),
                kGuidMcExpandEndStore);
  r->old_hashtable = kMcNull;
  r->old_nbuckets = 0;
  TracedPersist(root_oid_, offsetof(McRoot, old_hashtable),
                2 * sizeof(uint64_t), kGuidMcOldTableStore);
  (void)pool_->Free(Oid{old_table_off});
}

Response MemcachedMini::Get(const Request& request) {
  Response response;
  const PmOffset off = AssocFind(request.key, kGuidMcAssocFind);
  if (HasFault()) {
    response.status = Internal(fault_->message);
    return response;
  }
  McRoot* r = root();
  if (off != kMcNull) {
    McItem* item = ItemAt(off);
    // flush_all expiry filter. f2's logic bug makes the cutoff apply
    // immediately even when the operator scheduled it for the future.
    const uint64_t cutoff = r->flush_before;
    const bool cutoff_active =
        FaultArmed(FaultId::kF2FlushAllLogic)
            ? cutoff != 0  // bug: ignores whether the time has come
            : cutoff != 0 && static_cast<uint64_t>(now_) >= cutoff;
    if (cutoff_active && static_cast<uint64_t>(item->created) <= cutoff) {
      if (request.must_exist) {
        RaiseFault(FailureKind::kWrongResult, kGuidMcExpiryCheck,
                   root_oid_.off + offsetof(McRoot, flush_before),
                   "live item filtered by flush_all cutoff",
                   {"do_item_get", "item_is_flushed"});
        response.status = Internal(fault_->message);
        return response;
      }
      response.found = false;
      response.status = OkStatus();
      return response;
    }
    response.found = true;
    response.value.assign(item->data + item->keylen, item->vallen);
    response.status = OkStatus();
    return response;
  }
  if (request.must_exist) {
    // Diagnose the wrongful miss for the detector: distinguish a bogus
    // rehash flag (f5) from a broken chain (f3).
    if (r->expanding != 0 && r->old_hashtable == kMcNull) {
      RaiseFault(FailureKind::kWrongResult, kGuidMcLookupMiss,
                 root_oid_.off + offsetof(McRoot, expanding),
                 "lookup consulted rehash path with no old table",
                 {"assoc_find", "do_item_get"});
    } else {
      RaiseFault(FailureKind::kWrongResult, kGuidMcLookupMiss,
                 r->hashtable + BucketIndex(request.key) * sizeof(PmOffset),
                 "linked item missing from hash chain",
                 {"assoc_find", "do_item_get"});
    }
    response.status = Internal(fault_->message);
    return response;
  }
  response.found = false;
  response.status = OkStatus();
  return response;
}

Response MemcachedMini::Delete(const Request& request) {
  Response response;
  McRoot* r = root();
  const uint64_t index = BucketIndex(request.key);
  PmOffset* slot = BucketSlot(index);
  PmOffset prev = kMcNull;
  PmOffset cur = *slot;
  uint64_t budget = options_.chain_walk_budget;
  while (cur != kMcNull) {
    McItem* item = ItemAt(cur);
    if (item == nullptr || budget-- == 0) {
      RaiseFault(item == nullptr ? FailureKind::kCrash : FailureKind::kHang,
                 kGuidMcAssocFind, cur, "chain corrupt during delete",
                 {"assoc_delete", "process_delete_command"});
      response.status = Internal(fault_->message);
      return response;
    }
    if (item->keylen == request.key.size() &&
        std::memcmp(item->data, request.key.data(), request.key.size()) == 0) {
      // slabs_free sanity: the size class derived from the header must match
      // the block this item actually lives in (f4's wrapped length trips
      // this, matching the paper's do_slabs_free aborts).
      auto usable = pool_->UsableSize(Oid{cur});
      const size_t ntotal = sizeof(McItem) + item->keylen + item->vallen;
      if (usable.ok() && *usable + 1 < ntotal) {
        RaiseFault(FailureKind::kAssertion, kGuidMcItemAccess, cur,
                   "do_slabs_free: item size exceeds its slab block",
                   {"do_slabs_free", "item_free", "process_delete_command"});
        response.status = Internal(fault_->message);
        return response;
      }
      if (prev == kMcNull) {
        *slot = item->h_next;
        TracedPersistRange(r->hashtable + index * sizeof(PmOffset),
                           sizeof(PmOffset), kGuidMcBucketStore);
      } else {
        McItem* prev_item = ItemAt(prev);
        prev_item->h_next = item->h_next;
        TracedPersist(Oid{prev}, offsetof(McItem, h_next), sizeof(PmOffset),
                      kGuidMcHNextStore);
      }
      tracer_.Record(kGuidMcFreelistStore, cur);
      (void)pool_->Free(Oid{cur});
      {
        std::lock_guard<std::mutex> counters(counter_mutex_);
        r->item_count--;
        TracedPersist(root_oid_, offsetof(McRoot, item_count),
                      sizeof(uint64_t), kGuidMcCountStore);
      }
      response.status = OkStatus();
      response.found = true;
      return response;
    }
    prev = cur;
    cur = item->h_next;
  }
  response.status = OkStatus();
  response.found = false;
  return response;
}

Response MemcachedMini::Append(const Request& request) {
  Response response;
  const PmOffset off = AssocFind(request.key, kGuidMcAssocFind);
  if (HasFault()) {
    response.status = Internal(fault_->message);
    return response;
  }
  if (off == kMcNull) {
    response.status = NotFound("append target missing");
    return response;
  }
  McItem* item = ItemAt(off);
  const size_t real_total = item->vallen + request.value.size();
  if (!FaultArmed(FaultId::kF4AppendIntOverflow) && real_total > 255) {
    response.status = InvalidArgument("appended value too large");
    return response;
  }
  // f4: the new length is computed in the 8-bit header field; the copy below
  // uses the real length and overruns the block into its physical neighbor.
  const uint8_t stored_len = static_cast<uint8_t>(real_total);
  std::memcpy(item->data + item->keylen + item->vallen, request.value.data(),
              request.value.size());
  TracedPersist(Oid{off}, 0, sizeof(McItem) + item->keylen + real_total,
                kGuidMcDataStore);
  item->vallen = stored_len;
  TracedPersist(Oid{off}, offsetof(McItem, vallen), sizeof(uint8_t),
                kGuidMcValLenStore);
  response.status = OkStatus();
  return response;
}

Response MemcachedMini::Hold(const Request& request) {
  Response response;
  const PmOffset off = AssocFind(request.key, kGuidMcAssocFind);
  if (HasFault()) {
    response.status = Internal(fault_->message);
    return response;
  }
  if (off == kMcNull) {
    response.status = NotFound("no such item");
    return response;
  }
  McItem* item = ItemAt(off);
  if (FaultArmed(FaultId::kF1RefcountOverflow)) {
    item->refcount++;  // bug: no overflow check; 255 wraps to 0
  } else {
    if (item->refcount == 255) {
      response.status = FailedPrecondition("refcount saturated");
      return response;
    }
    item->refcount++;
  }
  TracedPersist(Oid{off}, offsetof(McItem, refcount), sizeof(uint8_t),
                kGuidMcRefcountStore);
  // Memcached frees any item whose refcount reads zero, assuming it was
  // already unlinked. The overflowed item is still linked (paper 2.3).
  if (item->refcount == 0) {
    tracer_.Record(kGuidMcReaperFree, off);
    (void)pool_->Free(Oid{off});
  }
  response.status = OkStatus();
  return response;
}

Response MemcachedMini::ReleaseRef(const Request& request) {
  Response response;
  const PmOffset off = AssocFind(request.key, kGuidMcAssocFind);
  if (HasFault()) {
    response.status = Internal(fault_->message);
    return response;
  }
  if (off == kMcNull) {
    response.status = NotFound("no such item");
    return response;
  }
  McItem* item = ItemAt(off);
  if (item->refcount <= 1) {
    response.status = FailedPrecondition("item not held");
    return response;
  }
  item->refcount--;
  TracedPersist(Oid{off}, offsetof(McItem, refcount), sizeof(uint8_t),
                kGuidMcRefcountStore);
  response.status = OkStatus();
  return response;
}

Response MemcachedMini::FlushAll(const Request& request) {
  Response response;
  McRoot* r = root();
  r->flush_before = static_cast<uint64_t>(now_ + request.int_arg);
  TracedPersist(root_oid_, offsetof(McRoot, flush_before), sizeof(uint64_t),
                kGuidMcFlushStore);
  response.status = OkStatus();
  return response;
}

void MemcachedMini::InjectRehashFlagBitFlip() {
  // A transient CPU fault flips the flag in the cache. The dirty line is
  // eventually written back by an unrelated flush (modelled by the quiet
  // persist: no checkpoint sees it) — the soft fault becomes durable, the
  // soft-to-hard transformation in its purest form.
  root()->expanding |= 1;
  pool_->device().PersistQuiet(root_oid_.off + offsetof(McRoot, expanding),
                               sizeof(uint64_t));
}

uint64_t MemcachedMini::ItemCount() { return root()->item_count; }

Status MemcachedMini::CheckConsistency() {
  ARTHAS_RETURN_IF_ERROR(pool_->CheckIntegrity());
  McRoot* r = root();
  if (r->expanding != 0 && r->old_hashtable == kMcNull) {
    return Corruption("rehash flag set with no old table");
  }
  uint64_t reachable = 0;
  for (uint64_t i = 0; i < r->nbuckets; i++) {
    PmOffset cur = *BucketSlot(i);
    uint64_t budget = options_.chain_walk_budget;
    while (cur != kMcNull) {
      McItem* item = ItemAt(cur);
      if (item == nullptr) {
        return Corruption("chain points outside the pool");
      }
      if (budget-- == 0) {
        return Corruption("hash chain cycle");
      }
      auto usable = pool_->UsableSize(Oid{cur});
      if (!usable.ok()) {
        return Corruption("chain points at a non-allocated block");
      }
      if (sizeof(McItem) + item->keylen + item->vallen > *usable + 1) {
        return Corruption("item larger than its block");
      }
      reachable++;
      cur = item->h_next;
    }
  }
  if (reachable != r->item_count) {
    return Corruption("item_count " + std::to_string(r->item_count) +
                      " != reachable " + std::to_string(reachable));
  }
  return OkStatus();
}

Status MemcachedMini::Recover() {
  // The recovery function retrieves the hashtable and touches every linked
  // item (bracketed by pmem_recover_begin/end in the paper's workflow).
  McRoot* r = root();
  RecoveryTouch(r->hashtable);
  uint64_t reachable = 0;
  for (uint64_t i = 0; i < r->nbuckets; i++) {
    PmOffset cur = *BucketSlot(i);
    uint64_t budget = options_.chain_walk_budget;
    while (cur != kMcNull) {
      McItem* item = ItemAt(cur);
      if (item == nullptr) {
        RaiseFault(FailureKind::kCrash, kGuidMcItemAccess, cur,
                   "recovery hit invalid item offset",
                   {"assoc_init", "recover"});
        return OkStatus();
      }
      if (budget-- == 0) {
        RaiseFault(FailureKind::kHang, kGuidMcAssocFind, cur,
                   "recovery chain walk exceeded budget",
                   {"assoc_init", "recover"});
        return OkStatus();
      }
      RecoveryTouch(cur);
      reachable++;
      cur = item->h_next;
    }
  }
  // The item count is derived metadata: recovery recomputes it from the
  // reachable items (the paper's "reconstruct volatile states from
  // persistent states" guidance).
  r->item_count = reachable;
  pool_->device().PersistQuiet(root_oid_.off + offsetof(McRoot, item_count),
                               sizeof(uint64_t));
  return OkStatus();
}

// --- IR model ----------------------------------------------------------------
//
// The analyzer's view of memcached_mini's PM-mutating code. Instructions
// that correspond to runtime persistence call sites carry the same GUIDs the
// tracer emits. Root fields: 0 hashtable, 1 nbuckets, 2 flush_before,
// 3 expanding, 4 item_count, 5 old_hashtable, 6 old_nbuckets, 7 freelist.
// Item fields: 0 h_next, 1 refcount, 2 linked, 3 keylen, 4 vallen,
// 5 created, 6 data.
void MemcachedMini::BuildIrModel() {
  model_ = std::make_unique<IrModule>("memcached_mini");
  IrModule& m = *model_;
  IrBuilder b(m);
  IrGlobal* g_root = m.CreateGlobal("g_root");

  // fn alloc_table(): single allocation site shared by the initial table and
  // expansion, so old- and new-table pointers alias.
  IrFunction* alloc_table = m.CreateFunction("alloc_table", 0);
  {
    b.SetInsertPoint(alloc_table->CreateBlock("entry"));
    IrInstruction* t = b.PmAlloc(b.Const(512), "table");
    b.Ret(t);
  }

  // fn init(): map the pool, publish the root, install the first table.
  IrFunction* init = m.CreateFunction("init", 0);
  {
    b.SetInsertPoint(init->CreateBlock("entry"));
    IrInstruction* r = b.PmMapFile("root");
    b.Store(r, g_root);
    IrInstruction* t = b.Call(alloc_table, {}, "t0");
    IrInstruction* ht_addr = b.FieldAddr(r, 0, "ht_addr");
    b.Store(t, ht_addr);
    b.Ret();
  }

  // fn slabs_alloc(): pop the freelist or carve a fresh item. One alloc site
  // for every item, so item pointers alias across operations (which is what
  // address reuse after a free means to the analysis).
  IrFunction* slabs_alloc = m.CreateFunction("slabs_alloc", 0);
  {
    b.SetInsertPoint(slabs_alloc->CreateBlock("entry"));
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* fl_addr = b.FieldAddr(r, 7, "fl_addr");
    IrInstruction* it = b.Load(fl_addr, "it");
    IrInstruction* next = b.Load(b.FieldAddr(it, 0, "it_hn"), "next");
    b.Store(next, fl_addr);
    IrInstruction* fresh = b.PmAlloc(b.Const(64), "fresh");
    IrInstruction* out = b.Phi({it, fresh}, "out");
    b.Ret(out);
  }

  // fn item_free(it): push onto the freelist (the slab reuse path).
  IrFunction* item_free = m.CreateFunction("item_free", 1);
  {
    b.SetInsertPoint(item_free->CreateBlock("entry"));
    IrArgument* it = item_free->arg(0);
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* fl_addr = b.FieldAddr(r, 7, "fl_addr");
    IrInstruction* head = b.Load(fl_addr, "head");
    b.Store(head, b.FieldAddr(it, 0, "hn_addr"));
    b.Store(it, fl_addr, kGuidMcFreelistStore);
    b.Ret();
  }

  // fn maybe_reap(it): free items whose refcount reads zero.
  IrFunction* maybe_reap = m.CreateFunction("maybe_reap", 1);
  {
    IrBasicBlock* entry = maybe_reap->CreateBlock("entry");
    IrBasicBlock* reap = maybe_reap->CreateBlock("reap");
    IrBasicBlock* done = maybe_reap->CreateBlock("done");
    b.SetInsertPoint(entry);
    IrArgument* it = maybe_reap->arg(0);
    IrInstruction* rc = b.Load(b.FieldAddr(it, 1, "rc_addr"), "rc");
    IrInstruction* z = b.Cmp(rc, b.Const(0), "z");
    b.CondBr(z, reap, done);
    b.SetInsertPoint(reap);
    b.Call(item_free, {it});
    b.PmFree(it, kGuidMcReaperFree);
    b.Br(done);
    b.SetInsertPoint(done);
    b.Ret();
  }

  // fn assoc_find(k): shared chain walk.
  IrFunction* assoc_find = m.CreateFunction("assoc_find", 1);
  {
    IrBasicBlock* entry = assoc_find->CreateBlock("entry");
    IrBasicBlock* walk = assoc_find->CreateBlock("walk");
    IrBasicBlock* body = assoc_find->CreateBlock("body");
    IrBasicBlock* out = assoc_find->CreateBlock("out");
    b.SetInsertPoint(entry);
    IrArgument* k = assoc_find->arg(0);
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* ht = b.Load(b.FieldAddr(r, 0, "ht_addr"), "ht");
    IrInstruction* slot = b.IndexAddr(ht, k, "slot");
    IrInstruction* h0 = b.Load(slot, "h0");
    b.Br(walk);
    b.SetInsertPoint(walk);
    IrInstruction* itn_fwd =
        b.Phi({h0}, "it");  // second input patched below
    IrInstruction* c = b.Cmp(itn_fwd, b.Const(0), "c");
    b.CondBr(c, body, out);
    b.SetInsertPoint(body);
    IrInstruction* itn = b.Load(b.FieldAddr(itn_fwd, 0, "hn_addr"), "itn");
    b.Br(walk);
    itn_fwd->AddOperand(itn);
    b.SetInsertPoint(out);
    b.Ret(itn_fwd);
  }

  // fn expand(): grow the table (the f5-relevant flag stores live here).
  IrFunction* expand = m.CreateFunction("expand", 0);
  {
    b.SetInsertPoint(expand->CreateBlock("entry"));
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* exp_addr = b.FieldAddr(r, 3, "exp_addr");
    b.Store(b.Const(1), exp_addr, kGuidMcExpandStore);
    IrInstruction* old_addr = b.FieldAddr(r, 5, "old_addr");
    IrInstruction* ht_addr = b.FieldAddr(r, 0, "ht_addr");
    IrInstruction* ht0 = b.Load(ht_addr, "ht0");
    b.Store(ht0, old_addr, kGuidMcOldTableStore);
    IrInstruction* nt = b.Call(alloc_table, {}, "nt");
    // Rehash: move chain heads into the new table.
    IrInstruction* oslot = b.IndexAddr(ht0, b.Const(0), "oslot");
    IrInstruction* head = b.Load(oslot, "head");
    IrInstruction* nslot = b.IndexAddr(nt, b.Const(0), "nslot");
    b.Store(head, nslot);
    b.Store(nt, ht_addr, kGuidMcTableStore);
    b.Store(b.Const(0), exp_addr, kGuidMcExpandEndStore);
    b.Ret();
  }

  // fn put(k, v).
  IrFunction* put = m.CreateFunction("put", 2);
  {
    IrBasicBlock* entry = put->CreateBlock("entry");
    IrBasicBlock* grow = put->CreateBlock("grow");
    IrBasicBlock* done = put->CreateBlock("done");
    b.SetInsertPoint(entry);
    IrArgument* k = put->arg(0);
    IrArgument* v = put->arg(1);
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* it = b.Call(slabs_alloc, {}, "it");
    b.Store(v, b.FieldAddr(it, 6, "data_addr"), kGuidMcItemInit);
    IrInstruction* ht = b.Load(b.FieldAddr(r, 0, "ht_addr"), "ht");
    IrInstruction* slot = b.IndexAddr(ht, k, "slot");
    IrInstruction* head = b.Load(slot, "head");
    b.Store(head, b.FieldAddr(it, 0, "hn_addr"), kGuidMcHNextStore);
    b.Store(it, slot, kGuidMcBucketStore);
    IrInstruction* cnt_addr = b.FieldAddr(r, 4, "cnt_addr");
    IrInstruction* cnt = b.Load(cnt_addr, "cnt");
    IrInstruction* cnt1 = b.BinOp(cnt, b.Const(1), "cnt1");
    b.Store(cnt1, cnt_addr, kGuidMcCountStore);
    IrInstruction* full = b.Cmp(cnt1, b.Const(128), "full");
    b.CondBr(full, grow, done);
    b.SetInsertPoint(grow);
    b.Call(expand, {});
    b.Br(done);
    b.SetInsertPoint(done);
    b.Ret();
  }

  // fn get(k): the expanding-aware lookup with the expiry filter. Hosts the
  // fault sites for f1/f2/f4 and the wrongful-miss site for f3/f5.
  IrFunction* get = m.CreateFunction("get", 1);
  {
    IrBasicBlock* entry = get->CreateBlock("entry");
    IrBasicBlock* oldpath = get->CreateBlock("oldpath");
    IrBasicBlock* newpath = get->CreateBlock("newpath");
    IrBasicBlock* walk = get->CreateBlock("walk");
    IrBasicBlock* body = get->CreateBlock("body");
    IrBasicBlock* filtered = get->CreateBlock("filtered");
    IrBasicBlock* step = get->CreateBlock("step");
    IrBasicBlock* miss = get->CreateBlock("miss");
    b.SetInsertPoint(entry);
    IrArgument* k = get->arg(0);
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* exp = b.Load(b.FieldAddr(r, 3, "exp_addr"), "exp");
    IrInstruction* e = b.Cmp(exp, b.Const(0), "e");
    b.CondBr(e, oldpath, newpath);
    b.SetInsertPoint(oldpath);
    IrInstruction* oht = b.Load(b.FieldAddr(r, 5, "old_addr"), "oht");
    IrInstruction* oslot = b.IndexAddr(oht, k, "oslot");
    IrInstruction* h0o = b.Load(oslot, "h0o");
    b.Br(walk);
    b.SetInsertPoint(newpath);
    IrInstruction* ht = b.Load(b.FieldAddr(r, 0, "ht_addr"), "ht");
    IrInstruction* slot = b.IndexAddr(ht, k, "slot");
    IrInstruction* h0 = b.Load(slot, "h0");
    b.Br(walk);
    b.SetInsertPoint(walk);
    IrInstruction* it = b.Phi({h0o, h0}, "it");  // loop input patched below
    IrInstruction* c = b.Cmp(it, b.Const(0), "c");
    b.CondBr(c, body, miss);
    b.SetInsertPoint(body);
    IrInstruction* hdr =
        b.Load(b.FieldAddr(it, 3, "klen_addr"), "hdr");
    hdr->set_guid(kGuidMcItemAccess);
    IrInstruction* fb = b.Load(b.FieldAddr(r, 2, "fb_addr"), "fb");
    fb->set_guid(kGuidMcExpiryCheck);
    IrInstruction* created = b.Load(b.FieldAddr(it, 5, "cr_addr"), "cr");
    IrInstruction* expd = b.Cmp(created, fb, "expd");
    b.CondBr(expd, filtered, step);
    b.SetInsertPoint(filtered);
    b.Ret(b.Const(0));
    b.SetInsertPoint(step);
    IrInstruction* itn = b.Load(b.FieldAddr(it, 0, "hn_addr"), "itn");
    itn->set_guid(kGuidMcAssocFind);
    b.Br(walk);
    it->AddOperand(itn);
    b.SetInsertPoint(miss);
    IrInstruction* mm = b.Load(b.IndexAddr(ht, k, "slot2"), "mm");
    mm->set_guid(kGuidMcLookupMiss);
    b.Ret(mm);
  }

  // fn del(k): unlink + free.
  IrFunction* del = m.CreateFunction("del", 1);
  {
    b.SetInsertPoint(del->CreateBlock("entry"));
    IrArgument* k = del->arg(0);
    IrInstruction* it = b.Call(assoc_find, {k}, "it");
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* ht = b.Load(b.FieldAddr(r, 0, "ht_addr"), "ht");
    IrInstruction* slot = b.IndexAddr(ht, k, "slot");
    IrInstruction* hn = b.Load(b.FieldAddr(it, 0, "hn_addr"), "hn");
    b.Store(hn, slot);
    IrInstruction* cnt_addr = b.FieldAddr(r, 4, "cnt_addr");
    IrInstruction* cnt = b.Load(cnt_addr, "cnt");
    b.Store(b.BinOp(cnt, b.Const(-1), "cntm"), cnt_addr);
    b.Call(item_free, {it});
    b.Ret();
  }

  // fn append(k, v): the f4 shape — the header length is computed narrow,
  // the copy cursor is byte-offset (wildcard field) and may clobber
  // anything in the item's slab neighborhood.
  IrFunction* append = m.CreateFunction("append", 2);
  {
    b.SetInsertPoint(append->CreateBlock("entry"));
    IrArgument* k = append->arg(0);
    IrArgument* v = append->arg(1);
    IrInstruction* it = b.Call(assoc_find, {k}, "it");
    IrInstruction* vl_addr = b.FieldAddr(it, 4, "vl_addr");
    IrInstruction* vl = b.Load(vl_addr, "vl");
    IrInstruction* total = b.BinOp(vl, v, "total");
    IrInstruction* dst = b.IndexAddr(it, total, "dst");
    b.Store(v, dst, kGuidMcDataStore);
    b.Store(total, vl_addr, kGuidMcValLenStore);
    b.Ret();
  }

  // fn hold(k): refcount increment + reap check (the f1 chain).
  IrFunction* hold = m.CreateFunction("hold", 1);
  {
    b.SetInsertPoint(hold->CreateBlock("entry"));
    IrArgument* k = hold->arg(0);
    IrInstruction* it = b.Call(assoc_find, {k}, "it");
    IrInstruction* rc_addr = b.FieldAddr(it, 1, "rc_addr");
    IrInstruction* rc = b.Load(rc_addr, "rc");
    IrInstruction* rc1 = b.BinOp(rc, b.Const(1), "rc1");
    b.Store(rc1, rc_addr, kGuidMcRefcountStore);
    b.Call(maybe_reap, {it});
    b.Ret();
  }

  // fn flush_all(d): the f2 cutoff store.
  IrFunction* flush_all = m.CreateFunction("flush_all", 1);
  {
    b.SetInsertPoint(flush_all->CreateBlock("entry"));
    IrArgument* d = flush_all->arg(0);
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* fb_addr = b.FieldAddr(r, 2, "fb_addr");
    IrInstruction* t = b.BinOp(d, b.Const(1), "t");
    b.Store(t, fb_addr, kGuidMcFlushStore);
    b.Ret();
  }

  assert(model_->Verify().ok());
  for (const IrInstruction* inst : model_->AllInstructions()) {
    if (inst->guid() != kNoGuid) {
      (void)registry_.Register(inst->guid(), name_,
                               inst->block()->parent()->name() + ":" +
                                   inst->block()->name(),
                               inst->ToString());
    }
  }
}

}  // namespace arthas
