// memcached_mini: a persistent-memory port of Memcached's core, scaled down.
//
// Reproduces the mechanisms behind faults f1-f5 of the paper's evaluation
// (Table 2): a chained hashtable whose buckets and items live in PM (the
// persistent Memcached port stores the entire item structure in PM,
// including "transient" fields like refcount — paper Section 2.2), item
// reference counting with a reaper that frees refcount-0 items, flush_all
// expiry semantics, value append, and an incremental-rehash flag in the
// persistent root.
//
// Armed faults:
//   f1 kF1RefcountOverflow  — refcount++ without overflow check; the wrap
//      to 0 makes the reaper free a still-linked item; address reuse then
//      creates a hashtable chain cycle and GET hangs (paper Section 2.3).
//   f2 kF2FlushAllLogic     — flush_all(delay) applies the cutoff
//      immediately instead of at now+delay, expiring valid items.
//   f3 kF3HashtableLockRace — insert uses a stale chain head (lost-update
//      race window), dropping a linked item from its chain.
//   f4 kF4AppendIntOverflow — append computes the new length in 16 bits;
//      the copy uses the unwrapped length and overruns into the next block.
//   f5 kF5RehashFlagBitflip — a CPU bit flip sets the persistent rehash
//      flag; a later persist of the same cache line makes it durable, and
//      lookups consult a bogus old table.

#ifndef ARTHAS_SYSTEMS_MEMCACHED_MINI_H_
#define ARTHAS_SYSTEMS_MEMCACHED_MINI_H_

#include <cstdint>
#include <string>

#include "systems/system_base.h"

namespace arthas {

// GUIDs of memcached_mini's PM instructions (1100-1199). Shared between the
// runtime trace call sites and the IR model.
constexpr Guid kGuidMcItemInit = 1101;       // item header+data store at put
constexpr Guid kGuidMcBucketStore = 1102;    // hashtable bucket head store
constexpr Guid kGuidMcHNextStore = 1103;     // item.h_next store
constexpr Guid kGuidMcCountStore = 1104;     // root.item_count store
constexpr Guid kGuidMcRefcountStore = 1105;  // item.refcount store
constexpr Guid kGuidMcFlushStore = 1106;     // root.flush_before store
constexpr Guid kGuidMcAssocFind = 1107;      // chain-walk load (fault site)
constexpr Guid kGuidMcExpiryCheck = 1108;    // flush cutoff load (fault site)
constexpr Guid kGuidMcLookupMiss = 1110;     // lookup-miss site (fault site)
constexpr Guid kGuidMcValLenStore = 1111;    // item.vallen store (append)
constexpr Guid kGuidMcDataStore = 1112;      // value byte copy store
constexpr Guid kGuidMcItemAccess = 1113;     // item header load (fault site)
constexpr Guid kGuidMcExpandStore = 1114;    // root.expanding := 1 store
constexpr Guid kGuidMcFreelistStore = 1116;  // slab freelist head store
constexpr Guid kGuidMcReaperFree = 1117;     // pm free in the reaper
constexpr Guid kGuidMcTableStore = 1118;     // root.hashtable/nbuckets store
constexpr Guid kGuidMcExpandEndStore = 1119;  // root.expanding := 0 store
constexpr Guid kGuidMcOldTableStore = 1120;  // root.old_hashtable store

struct MemcachedOptions {
  size_t pool_size = 1 * 1024 * 1024;
  uint64_t hashtable_buckets = 64;  // kept small so collisions are easy
  uint64_t chain_walk_budget = 4096;
};

class MemcachedMini : public PmSystemBase {
 public:
  using Options = MemcachedOptions;

  explicit MemcachedMini(Options options = {});

  Response HandleRequest(const Request& request) override;
  uint64_t ItemCount() override;
  Status CheckConsistency() override;

  // Sharded request locking: key ops are confined to one bucket chain, so
  // striping by bucket keeps colliding keys serialized. Buckets are grouped
  // by the cache line their 8-byte table slot lives in before striping:
  // persisting one slot copies its whole rounded line, so all slots in a
  // line must belong to one stripe. Hashtable expansion is deferred
  // maintenance (it relinks every chain), run under the exclusive gate by
  // RunPendingMaintenance.
  bool SupportsShardedLocks() const override { return true; }
  size_t RequestStripeOf(const std::string& key) const override {
    return BucketIndex(key) / kBucketsPerCacheLine % kNumRequestStripes;
  }
  void RunPendingMaintenance() override;

  // Injects the f5 CPU bit flip: flips the persistent rehash flag in the
  // live image (not yet durable; a later persist of the root line will
  // carry it to media — the soft-to-hard transformation).
  void InjectRehashFlagBitFlip();

  // Current virtual time used for item timestamps / flush_all; set by the
  // harness before each operation.
  void SetTime(int64_t now) { now_ = now; }

  // f3 needs a racy window: when set, the next insert captures the chain
  // head before a concurrent insert updates it (lost update).
  void OpenRaceWindow() { race_window_ = true; }

 protected:
  Status Recover() override;

 private:
  struct McRoot;
  struct McItem;

  McRoot* root();
  uint64_t BucketIndex(const std::string& key) const;
  PmOffset* BucketSlot(uint64_t index);
  Oid BucketArray();
  // Chain lookup; returns 0 when absent; raises kHang past the walk budget.
  PmOffset AssocFind(const std::string& key, Guid fault_site);
  McItem* ItemAt(PmOffset off);
  std::string ItemKey(const McItem* item) const;

  void MaybeExpand();
  Response Put(const Request& request);
  Response Get(const Request& request);
  Response Delete(const Request& request);
  Response Append(const Request& request);
  Response Hold(const Request& request);
  Response ReleaseRef(const Request& request);
  Response FlushAll(const Request& request);

  void BuildIrModel();

  Options options_;
  Oid root_oid_;
  int64_t now_ = 0;
  bool race_window_ = false;
  PmOffset stale_head_ = 0;   // captured chain head for the race
  uint64_t stale_bucket_ = 0;
};

}  // namespace arthas

#endif  // ARTHAS_SYSTEMS_MEMCACHED_MINI_H_
