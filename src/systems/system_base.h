// Shared machinery for the five target PM systems.
//
// PmSystemBase owns the pool, the runtime tracer, the IR model and GUID
// metadata (built by the subclass), fault-injection arming, and the
// fault-latching/restart plumbing, so each mini system only implements its
// data structures, its recovery function, and its injected bugs.

#ifndef ARTHAS_SYSTEMS_SYSTEM_BASE_H_
#define ARTHAS_SYSTEMS_SYSTEM_BASE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "faults/fault_ids.h"
#include "systems/pm_system.h"

namespace arthas {

class PmSystemBase : public PmSystemTarget {
 public:
  const std::string& name() const override { return name_; }
  PmemPool& pool() override { return *pool_; }
  Tracer& tracer() override { return tracer_; }
  const IrModule& ir_model() const override { return *model_; }
  const GuidRegistry& guid_registry() const override { return registry_; }
  const std::optional<FaultInfo>& last_fault() const override {
    return fault_;
  }
  const std::vector<PmOffset>& RecoveryAccessedObjects() const override {
    return recovery_accessed_;
  }

  // Out-of-line (system_base.cc): restart also runs the attached
  // consistency substrate's recovery step between pool recovery and the
  // system's own recovery function.
  Status Restart() override;

  // NVI wrapper: every Handle() call — harness lambdas, concurrent
  // drivers, tests — demarcates one failure-atomic section for the
  // attached substrate (nested scopes, e.g. under a RequestGuard, are
  // depth-collapsed). Subclasses implement HandleRequest().
  Response Handle(const Request& request) final {
    SectionScope section(*this);
    return HandleRequest(request);
  }

  // --- Fault injection -------------------------------------------------------

  // Arms a bug; the buggy code path stays dormant until its trigger
  // condition is met (a special request/workload, per paper Section 6.1).
  void ArmFault(FaultId id) { armed_ = id; }
  void DisarmFaults() { armed_ = FaultId::kNone; }
  bool FaultArmed(FaultId id) const { return armed_ == id; }

  void ClearFault() {
    fault_.reset();
    has_fault_.store(false, std::memory_order_release);
  }

 protected:
  PmSystemBase(std::string name, size_t pool_size);

  // Handles one client request; called by Handle() inside the request's
  // section scope. A fault during handling is reported in the response's
  // status and latched into last_fault().
  virtual Response HandleRequest(const Request& request) = 0;

  // Runs the system's recovery function; must call RecoveryTouch for every
  // PM object it retrieves (the pmem_recover_begin/end annotation).
  virtual Status Recover() = 0;

  // Latches a fault (the "process" just died / hung / paniced). Keep-first:
  // once a fault is latched, later raises are dropped — a dead process
  // executes nothing further, and Handle() short-circuits on HasFault(), so
  // single-threaded behaviour is unchanged. The latch makes concurrent
  // raises from striped requests safe: one winner, no torn FaultInfo.
  void RaiseFault(FailureKind kind, Guid guid, PmOffset fault_address,
                  std::string message, std::vector<std::string> stack);

  // Lock-free fast path; acquire pairs with the release store in RaiseFault
  // so a reader that sees true also sees the complete FaultInfo.
  bool HasFault() const {
    return has_fault_.load(std::memory_order_acquire);
  }

  // Instrumented persistence point: records <GUID, address> then persists.
  void TracedPersist(Oid oid, size_t offset, size_t size, Guid guid) {
    tracer_.Record(guid, oid.off + offset);
    pool_->Persist(oid, offset, size);
  }
  void TracedPersistRange(PmOffset address, size_t size, Guid guid) {
    tracer_.Record(guid, address);
    pool_->PersistRange(address, size);
  }

  void RecoveryTouch(PmOffset payload_offset) {
    recovery_accessed_.push_back(payload_offset);
  }

  std::string name_;
  std::unique_ptr<PmemPool> pool_;
  Tracer tracer_;
  std::unique_ptr<IrModule> model_;
  GuidRegistry registry_;
  std::optional<FaultInfo> fault_;
  FaultId armed_ = FaultId::kNone;
  std::vector<PmOffset> recovery_accessed_;
  // Guards shared bookkeeping that key-striped requests mutate outside any
  // one bucket's stripe: item counters, lazy-free queues, the slowlog.
  // Uncontended (and trivially cheap) in coarse mode. Lock order: acquired
  // after the request stripe, before any pool/device/checkpoint lock.
  std::mutex counter_mutex_;

 private:
  // Set (release) by RaiseFault under fault_latch_, cleared only by the
  // caller-serialized Restart()/ClearFault().
  std::atomic<bool> has_fault_{false};
  std::mutex fault_latch_;
};

}  // namespace arthas

#endif  // ARTHAS_SYSTEMS_SYSTEM_BASE_H_
