// CCEH: write-optimized dynamic (extendible) hashing for PM (Nam et al.,
// FAST '19), re-implemented at laptop scale. This is a "native persistence"
// system in the paper's taxonomy: it issues clwb/sfence-style persists
// itself rather than going through a transaction library.
//
// Structure: a directory of segment pointers with a global depth G; each
// segment has a local depth L and a fixed number of key/value slots.
// Inserting into a full segment splits it (L+1, redistribute, patch
// directory entries); when L == G the directory doubles (G+1).
//
// Armed fault (f9, reported by the RECIPE authors): directory doubling
// updates several pieces of metadata; if a crash lands after the new
// directory is durable but before the global depth is (the armed bug skips
// the depth's clwb), recovery sees a directory one generation ahead of its
// depth and insertions spin forever in the split-retry loop (paper 2.3).

#ifndef ARTHAS_SYSTEMS_CCEH_H_
#define ARTHAS_SYSTEMS_CCEH_H_

#include <cstdint>

#include "systems/system_base.h"

namespace arthas {

// GUIDs 3100-3199.
constexpr Guid kGuidCcPairStore = 3101;   // slot key/value store
constexpr Guid kGuidCcSegInit = 3102;     // fresh segment init
constexpr Guid kGuidCcDirStore = 3103;    // directory entry/range store
constexpr Guid kGuidCcRootDirStore = 3104;  // root.dir pointer store
constexpr Guid kGuidCcDepthLStore = 3105;   // segment local-depth store
constexpr Guid kGuidCcDepthGStore = 3106;   // root.global_depth store
constexpr Guid kGuidCcInsertLoop = 3107;    // insert retry probe (fault site)
constexpr Guid kGuidCcCountStore = 3108;    // root.count store
constexpr Guid kGuidCcInsertStore = 3109;   // slot store on the insert path

struct CcehOptions {
  size_t pool_size = 1 * 1024 * 1024;
  uint64_t initial_global_depth = 2;
  int retry_budget = 8;  // split-retry attempts before declaring a hang
};

class Cceh : public PmSystemBase {
 public:
  using Options = CcehOptions;

  explicit Cceh(Options options = {});

  Response HandleRequest(const Request& request) override;
  uint64_t ItemCount() override;
  Status CheckConsistency() override;

  // Integer-keyed native API (CCEH stores 8-byte keys and values).
  Status Insert(uint64_t key, uint64_t value);
  Result<uint64_t> Lookup(uint64_t key);

  uint64_t global_depth();

  // f9 is an *untimely crash*: the missing clwb only matters for the
  // doubling that the crash interrupts. The harness opens this window right
  // before forcing a doubling and crashes right after; doublings outside
  // the window persist the depth normally even with the fault armed.
  void OpenCrashWindow() { crash_window_ = true; }
  void CloseCrashWindow() { crash_window_ = false; }

  // FNV-1a of a string key (0 is remapped: it marks empty slots).
  static uint64_t Fnv(const std::string& s);

  // Searches for a key whose directory entry points at a segment whose
  // local depth exceeds the global depth (the f9 inconsistency). With
  // `require_full` the segment must also have no free slot for the key, so
  // inserting it enters the split-retry loop and hangs. NotFound when no
  // such segment is reachable. Used by the re-execution bug check: the
  // production workload hits such keys sooner or later; the harness
  // fast-forwards.
  Result<std::string> FindKeyForInconsistentSegment(bool require_full);
  Result<std::string> FindStuckInsertKey() {
    return FindKeyForInconsistentSegment(/*require_full=*/true);
  }

 protected:
  Status Recover() override;

 private:
  struct CcehRoot;
  struct Segment;
  static constexpr int kSlotsPerSegment = 8;

  CcehRoot* root();
  Segment* SegmentAt(PmOffset off);
  // Bounds-checked directory lookup; raises a crash fault (and returns
  // nullptr) when the index or entry is wild.
  Segment* SegmentForIndex(uint64_t idx);
  PmOffset* Directory();
  uint64_t DirIndex(uint64_t hash, uint64_t depth) const;

  Status Split(PmOffset seg_off, uint64_t hash);
  Status DoubleDirectory();

  Options options_;
  Oid root_oid_;
  bool crash_window_ = false;
  void BuildIrModel();
};

}  // namespace arthas

#endif  // ARTHAS_SYSTEMS_CCEH_H_
