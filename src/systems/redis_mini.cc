#include "systems/redis_mini.h"

#include <cassert>
#include <cstring>
#include <map>

#include "common/logging.h"

namespace arthas {

namespace {
constexpr PmOffset kRdNull = 0;

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
  }
  return h;
}

constexpr uint32_t kTypeString = 0;
constexpr uint32_t kTypeListpack = 1;
constexpr size_t kLpHeaderSize = 6;  // u32 total_bytes + u16 nelems
}  // namespace

struct RedisMini::RedisRoot {
  PmOffset dict;
  uint64_t nbuckets;
  uint64_t item_count;
  PmOffset slowlog_head;
  uint64_t slowlog_len;
};

struct RedisMini::DictEntry {
  PmOffset next;
  PmOffset key_obj;  // not refcounted: key bytes stored inline below
  PmOffset val_obj;
  uint32_t keylen;
  uint32_t pad;
  char key[];
};

struct RedisMini::RedisObj {
  uint32_t refcount;  // offset 0: persisted separately on each change
  uint32_t type;
  uint32_t len;       // payload bytes used (string) / listpack total_bytes
  uint32_t tombstone; // lazy-free marker; must be 0 for a live object
  char data[];
};

struct RedisMini::SlowlogEntry {
  PmOffset next;
  int64_t time;
  uint32_t arglen;
  uint32_t pad;
  char arg[];
};

RedisMini::RedisMini(Options options)
    : PmSystemBase("redis_mini", options.pool_size), options_(options) {
  auto root_res = pool_->Root(sizeof(RedisRoot));
  assert(root_res.ok());
  root_oid_ = *root_res;
  RedisRoot* r = root();
  if (r->dict == kRdNull) {
    auto table = pool_->Zalloc(options_.dict_buckets * sizeof(PmOffset));
    assert(table.ok());
    r->dict = table->off;
    r->nbuckets = options_.dict_buckets;
    pool_->PersistObject<RedisRoot>(root_oid_);
  }
  BuildIrModel();
}

RedisMini::RedisRoot* RedisMini::root() {
  return pool_->Direct<RedisRoot>(root_oid_);
}

uint64_t RedisMini::BucketIndex(const std::string& key) const {
  const auto* r =
      const_cast<RedisMini*>(this)->pool_->Direct<RedisRoot>(root_oid_);
  return Fnv1a(key) % r->nbuckets;
}

PmOffset* RedisMini::BucketSlot(uint64_t index) {
  return pool_->Direct<PmOffset>(Oid{root()->dict}) + index;
}

PmOffset RedisMini::FindEntry(const std::string& key) {
  PmOffset cur = *BucketSlot(BucketIndex(key));
  uint64_t budget = 4096;
  while (cur != kRdNull) {
    if (budget-- == 0) {
      RaiseFault(FailureKind::kHang, kGuidRdLookupMiss, cur,
                 "dict chain cycle", {"dictFind"});
      return kRdNull;
    }
    auto* entry = EntryAt(cur);
    if (entry == nullptr) {
      RaiseFault(FailureKind::kCrash, kGuidRdLookupMiss, cur,
                 "dict chain points at a wild address", {"dictFind"});
      return kRdNull;
    }
    if (entry->keylen == key.size() &&
        std::memcmp(entry->key, key.data(), key.size()) == 0) {
      return cur;
    }
    cur = entry->next;
  }
  return kRdNull;
}

RedisMini::RedisObj* RedisMini::ObjAt(PmOffset off) {
  if (off == kRdNull || off + sizeof(RedisObj) > pool_->device().size()) {
    return nullptr;
  }
  return reinterpret_cast<RedisObj*>(pool_->device().Live(off));
}

// Validated dict-entry access: a reverted/corrupted chain pointer would be
// a wild dereference (segfault) in the real system; here it returns null
// and the caller raises the crash fault.
RedisMini::DictEntry* RedisMini::EntryAt(PmOffset off) {
  if (off == kRdNull || off + sizeof(DictEntry) > pool_->device().size() ||
      !pool_->UsableSize(Oid{off}).ok()) {
    return nullptr;
  }
  return pool_->Direct<DictEntry>(Oid{off});
}

Result<Oid> RedisMini::AllocObj(uint32_t type, uint32_t capacity) {
  ARTHAS_ASSIGN_OR_RETURN(
      Oid oid, pool_->Zalloc(LineSafeSize(sizeof(RedisObj) + capacity)));
  RedisObj* obj = pool_->Direct<RedisObj>(oid);
  obj->refcount = 1;
  obj->type = type;
  obj->len = 0;
  obj->tombstone = 0;
  return oid;
}

Response RedisMini::HandleRequest(const Request& request) {
  Response response;
  if (HasFault()) {
    response.status = Internal("server unavailable (" +
                               std::string(FailureKindName(fault_->kind)) +
                               ")");
    return response;
  }
  {
    // The op counter and lazy-free queue are cross-key state; striped
    // requests bump/drain them under the counter lock (the real system does
    // this on the single event-loop thread).
    std::lock_guard<std::mutex> counters(counter_mutex_);
    op_counter_++;
    ProcessLazyFreeQueue();
  }
  switch (request.op) {
    case Request::Op::kPut:
      return Put(request);
    case Request::Op::kGet:
      return Get(request);
    case Request::Op::kDelete:
      return Delete(request);
    case Request::Op::kListPush:
      return ListPush(request);
    case Request::Op::kListRead:
      return ListRead(request);
    default:
      response.status = Unimplemented("op not supported by redis_mini");
      return response;
  }
}

void RedisMini::LazyFree(PmOffset obj) {
  std::lock_guard<std::mutex> counters(counter_mutex_);
  lazy_free_queue_.push_back({op_counter_, obj});
}

// Caller holds counter_mutex_.
void RedisMini::ProcessLazyFreeQueue() {
  // The background thread frees objects a while after they were queued.
  size_t kept = 0;
  for (size_t i = 0; i < lazy_free_queue_.size(); i++) {
    if (op_counter_ - lazy_free_queue_[i].first >= 4096) {
      (void)pool_->Free(Oid{lazy_free_queue_[i].second});
    } else {
      lazy_free_queue_[kept++] = lazy_free_queue_[i];
    }
  }
  lazy_free_queue_.resize(kept);
}

Response RedisMini::Put(const Request& request) {
  Response response;
  RedisRoot* r = root();
  const PmOffset existing = FindEntry(request.key);
  if (HasFault()) {
    response.status = Internal(fault_->message);
    return response;
  }
  if (existing != kRdNull) {
    auto* entry = pool_->Direct<DictEntry>(Oid{existing});
    // Update in place when the new value fits the object's buffer (as the
    // PM ports do, to avoid allocation churn); otherwise replace the
    // object.
    RedisObj* in_place = ObjAt(entry->val_obj);
    if (in_place != nullptr && in_place->type == kTypeString &&
        in_place->tombstone == 0) {
      auto usable = pool_->UsableSize(Oid{entry->val_obj});
      if (usable.ok() &&
          sizeof(RedisObj) + request.value.size() <= *usable) {
        std::memcpy(in_place->data, request.value.data(),
                    request.value.size());
        in_place->len = request.value.size();
        TracedPersist(Oid{entry->val_obj}, 0,
                      sizeof(RedisObj) + in_place->len, kGuidRdObjInit);
        if (request.value.size() >= options_.slow_threshold) {
          SlowlogAdd(request.key + " " + request.value);
        }
        response.status = OkStatus();
        return response;
      }
    }
    auto new_obj = AllocObj(kTypeString, request.value.size());
    if (!new_obj.ok()) {
      response.status = new_obj.status();
      return response;
    }
    RedisObj* obj = pool_->Direct<RedisObj>(*new_obj);
    obj->len = request.value.size();
    std::memcpy(obj->data, request.value.data(), request.value.size());
    TracedPersist(*new_obj, 0, sizeof(RedisObj) + obj->len, kGuidRdObjInit);
    const PmOffset old_val = entry->val_obj;
    entry->val_obj = new_obj->off;
    TracedPersist(Oid{existing}, offsetof(DictEntry, val_obj),
                  sizeof(PmOffset), kGuidRdValStore);
    // Drop the old value's reference.
    RedisObj* old_obj = ObjAt(old_val);
    if (old_obj != nullptr) {
      old_obj->refcount--;
      TracedPersist(Oid{old_val}, 0, sizeof(uint32_t), kGuidRdRefDecr);
      if (old_obj->refcount == 0) {
        LazyFree(old_val);
      }
    }
    if (request.value.size() >= options_.slow_threshold) {
      SlowlogAdd(request.key + " " + request.value);
    }
    response.status = OkStatus();
    return response;
  }

  auto obj_oid = AllocObj(kTypeString, request.value.size());
  if (!obj_oid.ok()) {
    RaiseFault(FailureKind::kOutOfSpace, kGuidRdObjInit, kNullPmOffset,
               "value allocation failed", {"createStringObject", "setCommand"});
    response.status = obj_oid.status();
    return response;
  }
  RedisObj* obj = pool_->Direct<RedisObj>(*obj_oid);
  obj->len = request.value.size();
  std::memcpy(obj->data, request.value.data(), request.value.size());
  TracedPersist(*obj_oid, 0, sizeof(RedisObj) + obj->len, kGuidRdObjInit);

  auto entry_oid = pool_->Zalloc(LineSafeSize(sizeof(DictEntry) + request.key.size()));
  if (!entry_oid.ok()) {
    RaiseFault(FailureKind::kOutOfSpace, kGuidRdEntryStore, kNullPmOffset,
               "entry allocation failed", {"dictAdd", "setCommand"});
    response.status = entry_oid.status();
    return response;
  }
  auto* entry = pool_->Direct<DictEntry>(*entry_oid);
  entry->keylen = request.key.size();
  std::memcpy(entry->key, request.key.data(), request.key.size());
  entry->val_obj = obj_oid->off;
  const uint64_t index = BucketIndex(request.key);
  entry->next = *BucketSlot(index);
  TracedPersist(*entry_oid, 0, sizeof(DictEntry) + entry->keylen,
                kGuidRdEntryStore);
  *BucketSlot(index) = entry_oid->off;
  TracedPersistRange(r->dict + index * sizeof(PmOffset), sizeof(PmOffset),
                     kGuidRdBucketStore);
  {
    // Persist inside the counter section: the media copy reads the whole
    // cache line (which also holds the slowlog fields), so every mutator and
    // persister of that line serializes on the counter mutex.
    std::lock_guard<std::mutex> counters(counter_mutex_);
    r->item_count++;
    TracedPersist(root_oid_, offsetof(RedisRoot, item_count), sizeof(uint64_t),
                  kGuidRdCountStore);
  }

  if (request.value.size() >= options_.slow_threshold) {
    // Slow commands are logged with their full argument vector.
    SlowlogAdd(request.key + " " + request.value);
  }
  response.status = OkStatus();
  return response;
}

Response RedisMini::Get(const Request& request) {
  Response response;
  const PmOffset entry_off = FindEntry(request.key);
  if (HasFault()) {
    response.status = Internal(fault_->message);
    return response;
  }
  if (entry_off == kRdNull) {
    if (request.must_exist) {
      RaiseFault(FailureKind::kWrongResult, kGuidRdLookupMiss,
                 root()->dict + BucketIndex(request.key) * sizeof(PmOffset),
                 "linked key missing from dict", {"dictFind", "getCommand"});
      response.status = Internal(fault_->message);
      return response;
    }
    response.found = false;
    response.status = OkStatus();
    return response;
  }
  auto* entry = pool_->Direct<DictEntry>(Oid{entry_off});
  RedisObj* obj = ObjAt(entry->val_obj);
  // serverAssert(o->refcount > 0) — the f7 panic site.
  if (obj == nullptr || obj->refcount == 0) {
    RaiseFault(FailureKind::kAssertion, kGuidRdAssert,
               entry->val_obj /* refcount field is at offset 0 */,
               "assertion o->refcount > 0 failed",
               {"incrRefCount", "getCommand", "serverPanic"});
    response.status = Internal(fault_->message);
    return response;
  }
  response.found = true;
  response.value.assign(obj->data, obj->len);
  response.status = OkStatus();
  return response;
}

Response RedisMini::Delete(const Request& request) {
  Response response;
  RedisRoot* r = root();
  const uint64_t index = BucketIndex(request.key);
  PmOffset prev = kRdNull;
  PmOffset cur = *BucketSlot(index);
  uint64_t budget = 4096;
  while (cur != kRdNull && budget-- > 0) {
    auto* entry = EntryAt(cur);
    if (entry == nullptr) {
      RaiseFault(FailureKind::kCrash, kGuidRdLookupMiss, cur,
                 "dict chain points at a wild address", {"dictDelete"});
      response.status = Internal(fault_->message);
      return response;
    }
    if (entry->keylen == request.key.size() &&
        std::memcmp(entry->key, request.key.data(), request.key.size()) == 0) {
      if (prev == kRdNull) {
        *BucketSlot(index) = entry->next;
        TracedPersistRange(r->dict + index * sizeof(PmOffset),
                           sizeof(PmOffset), kGuidRdBucketStore);
      } else {
        auto* prev_entry = pool_->Direct<DictEntry>(Oid{prev});
        prev_entry->next = entry->next;
        TracedPersist(Oid{prev}, offsetof(DictEntry, next), sizeof(PmOffset),
                      kGuidRdEntryStore);
      }
      // dictDelete accounting happens with the unlink; value release
      // (refcounting, lazy free) follows.
      {
        std::lock_guard<std::mutex> counters(counter_mutex_);
        r->item_count--;
        TracedPersist(root_oid_, offsetof(RedisRoot, item_count),
                      sizeof(uint64_t), kGuidRdCountStore);
      }
      RedisObj* obj = ObjAt(entry->val_obj);
      if (obj != nullptr) {
        obj->refcount--;
        TracedPersist(Oid{entry->val_obj}, 0, sizeof(uint32_t),
                      kGuidRdRefDecr);
        if (FaultArmed(FaultId::kF7RefcountLogicBug)) {
          // Bug: the lazy-free path decrements again and poisons the header,
          // even though another key still owns the object.
          obj->refcount--;
          TracedPersist(Oid{entry->val_obj}, 0, sizeof(uint32_t),
                        kGuidRdRefDecr);
          obj->tombstone = 1;
          if (obj->len > 0) {
            obj->data[0] = '\xff';
          }
          TracedPersist(Oid{entry->val_obj}, offsetof(RedisObj, tombstone),
                        sizeof(uint32_t) + 1, kGuidRdTombstone);
        } else if (obj->refcount == 0) {
          LazyFree(entry->val_obj);
        }
      }
      (void)pool_->Free(Oid{cur});
      response.status = OkStatus();
      response.found = true;
      return response;
    }
    prev = cur;
    cur = entry->next;
  }
  response.status = OkStatus();
  response.found = false;
  return response;
}

Status RedisMini::Share(const std::string& key, const std::string& alias_key) {
  const PmOffset entry_off = FindEntry(key);
  if (entry_off == kRdNull) {
    return NotFound("share source missing");
  }
  auto* src = pool_->Direct<DictEntry>(Oid{entry_off});
  const PmOffset val = src->val_obj;

  auto entry_oid = pool_->Zalloc(LineSafeSize(sizeof(DictEntry) + alias_key.size()));
  ARTHAS_RETURN_IF_ERROR(entry_oid.status());
  auto* entry = pool_->Direct<DictEntry>(*entry_oid);
  entry->keylen = alias_key.size();
  std::memcpy(entry->key, alias_key.data(), alias_key.size());
  entry->val_obj = val;
  const uint64_t index = BucketIndex(alias_key);
  entry->next = *BucketSlot(index);
  TracedPersist(*entry_oid, 0, sizeof(DictEntry) + entry->keylen,
                kGuidRdEntryStore);
  *BucketSlot(index) = entry_oid->off;
  TracedPersistRange(root()->dict + index * sizeof(PmOffset),
                     sizeof(PmOffset), kGuidRdBucketStore);
  RedisObj* obj = ObjAt(val);
  obj->refcount++;
  TracedPersist(Oid{val}, 0, sizeof(uint32_t), kGuidRdRefIncr);
  root()->item_count++;
  TracedPersist(root_oid_, offsetof(RedisRoot, item_count), sizeof(uint64_t),
                kGuidRdCountStore);
  return OkStatus();
}

Response RedisMini::ListPush(const Request& request) {
  Response response;
  PmOffset entry_off = FindEntry(request.key);
  if (HasFault()) {
    response.status = Internal(fault_->message);
    return response;
  }
  Oid obj_oid;
  if (entry_off == kRdNull) {
    // Create an empty listpack under this key.
    auto lp = AllocObj(kTypeListpack, 256);
    if (!lp.ok()) {
      response.status = lp.status();
      return response;
    }
    RedisObj* obj = pool_->Direct<RedisObj>(*lp);
    uint32_t total = kLpHeaderSize;
    uint16_t nelems = 0;
    std::memcpy(obj->data, &total, 4);
    std::memcpy(obj->data + 4, &nelems, 2);
    obj->len = total;
    TracedPersist(*lp, 0, sizeof(RedisObj) + kLpHeaderSize, kGuidRdObjInit);

    auto entry_oid = pool_->Zalloc(LineSafeSize(sizeof(DictEntry) + request.key.size()));
    if (!entry_oid.ok()) {
      response.status = entry_oid.status();
      return response;
    }
    auto* entry = pool_->Direct<DictEntry>(*entry_oid);
    entry->keylen = request.key.size();
    std::memcpy(entry->key, request.key.data(), request.key.size());
    entry->val_obj = lp->off;
    const uint64_t index = BucketIndex(request.key);
    entry->next = *BucketSlot(index);
    TracedPersist(*entry_oid, 0, sizeof(DictEntry) + entry->keylen,
                  kGuidRdEntryStore);
    *BucketSlot(index) = entry_oid->off;
    TracedPersistRange(root()->dict + index * sizeof(PmOffset),
                       sizeof(PmOffset), kGuidRdBucketStore);
    root()->item_count++;
    TracedPersist(root_oid_, offsetof(RedisRoot, item_count),
                  sizeof(uint64_t), kGuidRdCountStore);
    entry_off = entry_oid->off;
    obj_oid = Oid{lp->off};
  } else {
    obj_oid = Oid{pool_->Direct<DictEntry>(Oid{entry_off})->val_obj};
  }

  RedisObj* obj = pool_->Direct<RedisObj>(obj_oid);
  if (obj->type != kTypeListpack) {
    response.status = InvalidArgument("not a listpack key");
    return response;
  }
  if (request.value.size() > 250) {
    response.status = InvalidArgument("element too large for listpack");
    return response;
  }
  uint32_t total;
  uint16_t nelems;
  std::memcpy(&total, obj->data, 4);
  std::memcpy(&nelems, obj->data + 4, 2);
  const uint32_t new_total = total + 1 + request.value.size();

  auto usable = pool_->UsableSize(obj_oid);
  if (!usable.ok()) {
    response.status = usable.status();
    return response;
  }
  if (sizeof(RedisObj) + new_total > *usable) {
    // Grow the object; the dict entry must be repointed.
    auto grown = pool_->Realloc(obj_oid, sizeof(RedisObj) + new_total * 2);
    if (!grown.ok()) {
      response.status = grown.status();
      return response;
    }
    obj_oid = *grown;
    obj = pool_->Direct<RedisObj>(obj_oid);
    auto* entry = pool_->Direct<DictEntry>(Oid{entry_off});
    entry->val_obj = obj_oid.off;
    TracedPersist(Oid{entry_off}, offsetof(DictEntry, val_obj),
                  sizeof(PmOffset), kGuidRdValStore);
  }

  // Append the element.
  obj->data[total] = static_cast<char>(request.value.size());
  std::memcpy(obj->data + total + 1, request.value.data(),
              request.value.size());
  TracedPersist(obj_oid, sizeof(RedisObj) + total, 1 + request.value.size(),
                kGuidRdLpElem);

  // Encode the new header. f6: listpacks beyond the 4 KiB boundary hit the
  // encoding logic error and the size header is corrupted (paper 2.3).
  uint32_t stored_total = new_total;
  if (FaultArmed(FaultId::kF6ListpackOverflow) &&
      new_total > options_.listpack_limit) {
    stored_total = new_total << 4;  // bogus size, far past the buffer
  }
  nelems++;
  std::memcpy(obj->data, &stored_total, 4);
  std::memcpy(obj->data + 4, &nelems, 2);
  obj->len = stored_total;
  TracedPersist(obj_oid, offsetof(RedisObj, len),
                sizeof(uint32_t) * 2 + kLpHeaderSize, kGuidRdLpHeader);
  response.status = OkStatus();
  return response;
}

Response RedisMini::ListRead(const Request& request) {
  Response response;
  const PmOffset entry_off = FindEntry(request.key);
  if (HasFault()) {
    response.status = Internal(fault_->message);
    return response;
  }
  if (entry_off == kRdNull) {
    response.found = false;
    response.status = OkStatus();
    return response;
  }
  auto* entry = pool_->Direct<DictEntry>(Oid{entry_off});
  RedisObj* obj = ObjAt(entry->val_obj);
  if (obj == nullptr || obj->type != kTypeListpack) {
    response.status = InvalidArgument("not a listpack key");
    return response;
  }
  uint32_t total;
  uint16_t nelems;
  std::memcpy(&total, obj->data, 4);
  std::memcpy(&nelems, obj->data + 4, 2);
  auto usable = pool_->UsableSize(Oid{entry->val_obj});
  const size_t capacity = usable.ok() ? *usable - sizeof(RedisObj) : 0;

  // lpNext walk: the cursor advances through the buffer until it reaches
  // the size header's end mark. A corrupt total (f6) drives it past the
  // real elements into garbage and then past the buffer — in the real
  // system this dereferences unmapped memory and segfaults.
  size_t cursor = kLpHeaderSize;
  std::string all;
  (void)nelems;
  while (cursor < total) {
    if (cursor + 1 > capacity) {
      RaiseFault(FailureKind::kCrash, kGuidRdLpRead,
                 entry->val_obj + offsetof(RedisObj, len),
                 "lpNext read past listpack buffer",
                 {"lpNext", "lrangeCommand"});
      response.status = Internal(fault_->message);
      return response;
    }
    const uint8_t elen = static_cast<uint8_t>(obj->data[cursor]);
    if (cursor + 1 + elen > capacity) {
      RaiseFault(FailureKind::kCrash, kGuidRdLpRead,
                 entry->val_obj + offsetof(RedisObj, len),
                 "lpNext element overruns listpack buffer",
                 {"lpNext", "lrangeCommand"});
      response.status = Internal(fault_->message);
      return response;
    }
    if (!all.empty()) {
      all += ",";
    }
    all.append(obj->data + cursor + 1, elen);
    cursor += 1 + elen;
  }
  response.found = true;
  response.value = std::move(all);
  response.status = OkStatus();
  return response;
}

void RedisMini::SlowlogAdd(const std::string& arg) {
  // The slowlog ring is shared across keys; striped Puts serialize here.
  std::lock_guard<std::mutex> counters(counter_mutex_);
  RedisRoot* r = root();
  tracer_.Record(kGuidRdSlowlogAlloc, r->slowlog_head);
  auto entry_oid = pool_->Zalloc(LineSafeSize(sizeof(SlowlogEntry) + arg.size()));
  if (!entry_oid.ok()) {
    RaiseFault(FailureKind::kOutOfSpace, kGuidRdSlowlogAlloc, kNullPmOffset,
               "slowlog allocation failed: pool exhausted",
               {"slowlogPushEntryIfNeeded"});
    return;
  }
  auto* entry = pool_->Direct<SlowlogEntry>(*entry_oid);
  entry->arglen = arg.size();
  std::memcpy(entry->arg, arg.data(), arg.size());
  entry->next = r->slowlog_head;
  TracedPersist(*entry_oid, 0, sizeof(SlowlogEntry) + entry->arglen,
                kGuidRdSlowlogLink);
  r->slowlog_head = entry_oid->off;
  r->slowlog_len++;
  TracedPersist(root_oid_, offsetof(RedisRoot, slowlog_head),
                2 * sizeof(uint64_t), kGuidRdSlowlogLink);

  if (r->slowlog_len > options_.slowlog_max) {
    // Unlink the oldest entry. f8: the free is forgotten — the entry is
    // unreachable but still allocated, leaking PM.
    PmOffset prev = kRdNull;
    PmOffset cur = r->slowlog_head;
    while (cur != kRdNull) {
      auto* e = pool_->Direct<SlowlogEntry>(Oid{cur});
      if (e->next == kRdNull) {
        break;
      }
      prev = cur;
      cur = e->next;
    }
    if (prev != kRdNull) {
      auto* prev_entry = pool_->Direct<SlowlogEntry>(Oid{prev});
      prev_entry->next = kRdNull;
      TracedPersist(Oid{prev}, offsetof(SlowlogEntry, next), sizeof(PmOffset),
                    kGuidRdSlowlogLink);
      r->slowlog_len--;
      TracedPersist(root_oid_, offsetof(RedisRoot, slowlog_len),
                    sizeof(uint64_t), kGuidRdSlowlogLink);
      if (!FaultArmed(FaultId::kF8SlowlogLeak)) {
        (void)pool_->Free(Oid{cur});
      }
    }
  }
}

uint64_t RedisMini::ItemCount() { return root()->item_count; }

Status RedisMini::CheckConsistency() {
  ARTHAS_RETURN_IF_ERROR(pool_->CheckIntegrity());
  RedisRoot* r = root();
  uint64_t reachable = 0;
  std::map<PmOffset, uint32_t> references;
  for (uint64_t i = 0; i < r->nbuckets; i++) {
    PmOffset cur = *BucketSlot(i);
    uint64_t budget = 4096;
    while (cur != kRdNull) {
      if (budget-- == 0) {
        return Corruption("dict chain cycle");
      }
      auto* entry = EntryAt(cur);
      if (entry == nullptr) {
        return Corruption("dict chain points at a wild address");
      }
      RedisObj* obj = ObjAt(entry->val_obj);
      if (obj == nullptr) {
        return Corruption("entry points at invalid value object");
      }
      if (obj->tombstone != 0) {
        return Corruption("live object carries a lazy-free tombstone");
      }
      if (obj->refcount == 0) {
        return Corruption("live object has refcount 0 (key '" +
                          std::string(entry->key, entry->keylen) +
                          "', obj offset " + std::to_string(entry->val_obj) +
                          ")");
      }
      if (obj->type == kTypeListpack) {
        uint32_t total;
        std::memcpy(&total, obj->data, 4);
        auto usable = pool_->UsableSize(Oid{entry->val_obj});
        if (!usable.ok() || sizeof(RedisObj) + total > *usable) {
          return Corruption("listpack header exceeds its buffer");
        }
      }
      references[entry->val_obj]++;
      reachable++;
      cur = entry->next;
    }
  }
  if (reachable != r->item_count) {
    return Corruption("item_count mismatch");
  }
  for (const auto& [off, refs] : references) {
    if (ObjAt(off)->refcount != refs) {
      return Corruption("refcount " + std::to_string(ObjAt(off)->refcount) +
                        " != references " + std::to_string(refs));
    }
  }
  return OkStatus();
}

Status RedisMini::Recover() {
  // Restart loses the volatile lazy-free queue; unfreed dead objects are a
  // (small, bounded) leak, exactly as in the real system.
  lazy_free_queue_.clear();
  RedisRoot* r = root();
  RecoveryTouch(r->dict);
  uint64_t reachable = 0;
  for (uint64_t i = 0; i < r->nbuckets; i++) {
    PmOffset cur = *BucketSlot(i);
    uint64_t budget = 4096;
    while (cur != kRdNull) {
      if (budget-- == 0) {
        RaiseFault(FailureKind::kHang, kGuidRdLookupMiss, cur,
                   "recovery dict walk exceeded budget", {"loadDataFromPm"});
        return OkStatus();
      }
      auto* entry = EntryAt(cur);
      if (entry == nullptr) {
        RaiseFault(FailureKind::kCrash, kGuidRdLookupMiss, cur,
                   "recovery hit a wild dict pointer", {"loadDataFromPm"});
        return OkStatus();
      }
      RecoveryTouch(cur);
      RecoveryTouch(entry->val_obj);
      reachable++;
      cur = entry->next;
    }
  }
  // The dict's used-count is derived metadata: recovery recomputes it from
  // the reachable entries (the paper's "reconstruct volatile states from
  // persistent states" guidance — the count cache in DRAM is rebuilt, and
  // the persistent copy refreshed).
  r->item_count = reachable;
  pool_->device().PersistQuiet(root_oid_.off + offsetof(RedisRoot, item_count),
                               sizeof(uint64_t));
  PmOffset slow = r->slowlog_head;
  uint64_t budget = 65536;
  while (slow != kRdNull && budget-- > 0) {
    if (slow + sizeof(SlowlogEntry) > pool_->device().size() ||
        !pool_->UsableSize(Oid{slow}).ok()) {
      RaiseFault(FailureKind::kCrash, kGuidRdSlowlogLink, slow,
                 "recovery hit a wild slowlog pointer", {"slowlogInit"});
      return OkStatus();
    }
    RecoveryTouch(slow);
    slow = pool_->Direct<SlowlogEntry>(Oid{slow})->next;
  }
  return OkStatus();
}

// --- IR model ----------------------------------------------------------------
//
// Root fields: 0 dict, 1 nbuckets, 2 item_count, 3 slowlog_head,
// 4 slowlog_len. Entry fields: 0 next, 1 key_obj, 2 val_obj, 3 keylen.
// Obj fields: 0 refcount, 1 type, 2 len, 3 tombstone, 4 data.
void RedisMini::BuildIrModel() {
  model_ = std::make_unique<IrModule>("redis_mini");
  IrModule& m = *model_;
  IrBuilder b(m);
  IrGlobal* g_root = m.CreateGlobal("g_root");

  IrFunction* init = m.CreateFunction("init", 0);
  {
    b.SetInsertPoint(init->CreateBlock("entry"));
    IrInstruction* r = b.PmMapFile("root");
    b.Store(r, g_root);
    IrInstruction* dict = b.PmAlloc(b.Const(512), "dict");
    b.Store(dict, b.FieldAddr(r, 0, "dict_addr"));
    b.Ret();
  }

  // fn alloc_obj(): single site for every robj (strings and listpacks).
  IrFunction* alloc_obj = m.CreateFunction("alloc_obj", 0);
  {
    b.SetInsertPoint(alloc_obj->CreateBlock("entry"));
    IrInstruction* o = b.PmAlloc(b.Const(64), "obj");
    b.Store(b.Const(1), b.FieldAddr(o, 0, "rc_addr"));
    b.Ret(o);
  }

  // fn alloc_entry(): single site for dict entries.
  IrFunction* alloc_entry = m.CreateFunction("alloc_entry", 0);
  {
    b.SetInsertPoint(alloc_entry->CreateBlock("entry"));
    IrInstruction* e = b.PmAlloc(b.Const(64), "e");
    b.Ret(e);
  }

  // fn find(k): dict chain walk.
  IrFunction* find = m.CreateFunction("find", 1);
  {
    IrBasicBlock* entry = find->CreateBlock("entry");
    IrBasicBlock* walk = find->CreateBlock("walk");
    IrBasicBlock* body = find->CreateBlock("body");
    IrBasicBlock* out = find->CreateBlock("out");
    b.SetInsertPoint(entry);
    IrArgument* k = find->arg(0);
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* dict = b.Load(b.FieldAddr(r, 0, "dict_addr"), "dict");
    IrInstruction* slot = b.IndexAddr(dict, k, "slot");
    IrInstruction* h0 = b.Load(slot, "h0");
    b.Br(walk);
    b.SetInsertPoint(walk);
    IrInstruction* it = b.Phi({h0}, "it");
    IrInstruction* c = b.Cmp(it, b.Const(0), "c");
    b.CondBr(c, body, out);
    b.SetInsertPoint(body);
    IrInstruction* itn = b.Load(b.FieldAddr(it, 0, "next_addr"), "itn");
    b.Br(walk);
    it->AddOperand(itn);
    b.SetInsertPoint(out);
    b.Ret(it);
  }

  // fn set(k, v).
  IrFunction* set = m.CreateFunction("set", 2);
  {
    b.SetInsertPoint(set->CreateBlock("entry"));
    IrArgument* k = set->arg(0);
    IrArgument* v = set->arg(1);
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* o = b.Call(alloc_obj, {}, "o");
    b.Store(v, b.FieldAddr(o, 4, "data_addr"), kGuidRdObjInit);
    IrInstruction* e = b.Call(alloc_entry, {}, "e");
    b.Store(k, b.FieldAddr(e, 3, "klen_addr"), kGuidRdEntryStore);
    b.Store(o, b.FieldAddr(e, 2, "val_addr"), kGuidRdValStore);
    IrInstruction* dict = b.Load(b.FieldAddr(r, 0, "dict_addr"), "dict");
    IrInstruction* slot = b.IndexAddr(dict, k, "slot");
    IrInstruction* head = b.Load(slot, "head");
    b.Store(head, b.FieldAddr(e, 0, "next_addr"));
    b.Store(e, slot, kGuidRdBucketStore);
    IrInstruction* cnt_addr = b.FieldAddr(r, 2, "cnt_addr");
    IrInstruction* cnt = b.Load(cnt_addr, "cnt");
    b.Store(b.BinOp(cnt, b.Const(1), "cnt1"), cnt_addr, kGuidRdCountStore);
    b.Ret();
  }

  // fn get(k): hosts the refcount assert (f7) and miss (f3-style) sites.
  IrFunction* get = m.CreateFunction("get", 1);
  {
    IrBasicBlock* entry = get->CreateBlock("entry");
    IrBasicBlock* found = get->CreateBlock("found");
    IrBasicBlock* miss = get->CreateBlock("miss");
    b.SetInsertPoint(entry);
    IrArgument* k = get->arg(0);
    IrInstruction* e = b.Call(find, {k}, "e");
    IrInstruction* c = b.Cmp(e, b.Const(0), "c");
    b.CondBr(c, found, miss);
    b.SetInsertPoint(found);
    IrInstruction* o = b.Load(b.FieldAddr(e, 2, "val_addr"), "o");
    IrInstruction* rc = b.Load(b.FieldAddr(o, 0, "rc_addr"), "rc");
    rc->set_guid(kGuidRdAssert);
    IrInstruction* data = b.Load(b.FieldAddr(o, 4, "data_addr"), "data");
    b.Ret(data);
    b.SetInsertPoint(miss);
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* dict = b.Load(b.FieldAddr(r, 0, "dict_addr"), "dict");
    IrInstruction* mm = b.Load(b.IndexAddr(dict, k, "slot2"), "mm");
    mm->set_guid(kGuidRdLookupMiss);
    b.Ret(mm);
  }

  // fn del(k): unlink + the f7 double-decrement & tombstone stores.
  IrFunction* del = m.CreateFunction("del", 1);
  {
    b.SetInsertPoint(del->CreateBlock("entry"));
    IrArgument* k = del->arg(0);
    IrInstruction* e = b.Call(find, {k}, "e");
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* dict = b.Load(b.FieldAddr(r, 0, "dict_addr"), "dict");
    IrInstruction* slot = b.IndexAddr(dict, k, "slot");
    IrInstruction* nxt = b.Load(b.FieldAddr(e, 0, "next_addr"), "nxt");
    b.Store(nxt, slot);  // runtime unlink records kGuidRdBucketStore
    IrInstruction* o = b.Load(b.FieldAddr(e, 2, "val_addr"), "o");
    IrInstruction* rc_addr = b.FieldAddr(o, 0, "rc_addr");
    IrInstruction* rc = b.Load(rc_addr, "rc");
    IrInstruction* rc1 = b.BinOp(rc, b.Const(-1), "rc1");
    b.Store(rc1, rc_addr, kGuidRdRefDecr);
    b.Store(b.Const(1), b.FieldAddr(o, 3, "tomb_addr"), kGuidRdTombstone);
    IrInstruction* cnt_addr = b.FieldAddr(r, 2, "cnt_addr");
    IrInstruction* cnt = b.Load(cnt_addr, "cnt");
    b.Store(b.BinOp(cnt, b.Const(-1), "cntm"), cnt_addr);
    b.Ret();
  }

  // fn share(k1, k2): refcount increment.
  IrFunction* share = m.CreateFunction("share", 2);
  {
    b.SetInsertPoint(share->CreateBlock("entry"));
    IrArgument* k1 = share->arg(0);
    IrArgument* k2 = share->arg(1);
    IrInstruction* e1 = b.Call(find, {k1}, "e1");
    IrInstruction* o = b.Load(b.FieldAddr(e1, 2, "val_addr"), "o");
    IrInstruction* e2 = b.Call(alloc_entry, {}, "e2");
    b.Store(k2, b.FieldAddr(e2, 3, "klen_addr"));
    b.Store(o, b.FieldAddr(e2, 2, "val_addr"));
    IrInstruction* rc_addr = b.FieldAddr(o, 0, "rc_addr");
    IrInstruction* rc = b.Load(rc_addr, "rc");
    b.Store(b.BinOp(rc, b.Const(1), "rc1"), rc_addr, kGuidRdRefIncr);
    b.Ret();
  }

  // fn lpush(k, v): listpack append with the size-header encoding.
  IrFunction* lpush = m.CreateFunction("lpush", 2);
  {
    b.SetInsertPoint(lpush->CreateBlock("entry"));
    IrArgument* k = lpush->arg(0);
    IrArgument* v = lpush->arg(1);
    IrInstruction* e = b.Call(find, {k}, "e");
    IrInstruction* o = b.Load(b.FieldAddr(e, 2, "val_addr"), "o");
    // cursor = data + total: a byte-offset (wildcard) pointer.
    IrInstruction* total = b.Load(b.FieldAddr(o, 2, "len_addr"), "total");
    IrInstruction* cursor = b.IndexAddr(o, total, "cursor");
    b.Store(v, cursor, kGuidRdLpElem);
    IrInstruction* new_total = b.BinOp(total, v, "new_total");
    b.Store(new_total, b.FieldAddr(o, 2, "len_addr"), kGuidRdLpHeader);
    b.Ret();
  }

  // fn lread(k): the lpNext walk (f6 fault site).
  IrFunction* lread = m.CreateFunction("lread", 1);
  {
    IrBasicBlock* entry = lread->CreateBlock("entry");
    IrBasicBlock* walk = lread->CreateBlock("walk");
    IrBasicBlock* body = lread->CreateBlock("body");
    IrBasicBlock* out = lread->CreateBlock("out");
    b.SetInsertPoint(entry);
    IrArgument* k = lread->arg(0);
    IrInstruction* e = b.Call(find, {k}, "e");
    IrInstruction* o = b.Load(b.FieldAddr(e, 2, "val_addr"), "o");
    IrInstruction* total = b.Load(b.FieldAddr(o, 2, "len_addr"), "total");
    b.Br(walk);
    b.SetInsertPoint(walk);
    IrInstruction* cur = b.Phi({b.Const(0)}, "cur");
    IrInstruction* c = b.Cmp(cur, total, "c");
    b.CondBr(c, body, out);
    b.SetInsertPoint(body);
    IrInstruction* p = b.IndexAddr(o, cur, "p");
    IrInstruction* elem = b.Load(p, "elem");
    elem->set_guid(kGuidRdLpRead);
    IrInstruction* nxt = b.BinOp(cur, elem, "nxt");
    b.Br(walk);
    cur->AddOperand(nxt);
    b.SetInsertPoint(out);
    b.Ret(cur);
  }

  // fn slowlog_add(arg): push + prune-without-free.
  IrFunction* slowlog_add = m.CreateFunction("slowlog_add", 1);
  {
    b.SetInsertPoint(slowlog_add->CreateBlock("entry"));
    IrArgument* arg = slowlog_add->arg(0);
    IrInstruction* r = b.Load(g_root, "r");
    IrInstruction* se = b.PmAlloc(b.Const(64), "se");
    se->set_guid(kGuidRdSlowlogAlloc);
    b.Store(arg, b.FieldAddr(se, 2, "arg_addr"));
    IrInstruction* head_addr = b.FieldAddr(r, 3, "head_addr");
    IrInstruction* head = b.Load(head_addr, "head");
    b.Store(head, b.FieldAddr(se, 0, "next_addr"));
    b.Store(se, head_addr, kGuidRdSlowlogLink);
    b.Ret();
  }

  assert(model_->Verify().ok());
  for (const IrInstruction* inst : model_->AllInstructions()) {
    if (inst->guid() != kNoGuid) {
      (void)registry_.Register(inst->guid(), name_,
                               inst->block()->parent()->name() + ":" +
                                   inst->block()->name(),
                               inst->ToString());
    }
  }
}

}  // namespace arthas
