// Hard-failure detection (paper Section 4.3).
//
// The detector monitors the target system for crashes, assertion failures,
// hangs, leaks, and wrong results, and uses heuristics to judge whether a
// failure is a *potential hard failure*: it compares the symptom with a
// previously recorded failure (same exit code, same fault instruction,
// loosely the same stack trace). The heuristics are allowed to be imperfect
// — the reactor prunes false alarms when the reversion plan comes out empty
// (Section 4.5).
//
// It also hosts the PM-usage leak monitor and user-defined checks.

#ifndef ARTHAS_DETECTOR_DETECTOR_H_
#define ARTHAS_DETECTOR_DETECTOR_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "systems/pm_system.h"

namespace arthas {

struct DetectorConfig {
  // Fraction of stack frames that must match for two traces to be "loosely
  // the same".
  double stack_similarity = 0.5;
  // Leak monitor: flag when PM usage exceeds this fraction of the pool.
  double leak_usage_fraction = 0.9;
};

class Detector {
 public:
  explicit Detector(DetectorConfig config = {}) : config_(config) {}

  enum class Assessment {
    kNoFailure,
    kFirstFailure,           // record it; a restart may clear it (soft)
    kSuspectedHardFailure,   // same symptom recurred across a restart
  };

  // Feed the outcome of a run (or of a post-restart probe).
  Assessment Observe(const std::optional<FaultInfo>& fault);

  // Leak monitor: returns a synthesized fault when PM usage looks like a
  // leak (paper: "stopped by a PM usage monitor").
  std::optional<FaultInfo> CheckPmUsage(const PmemPool& pool,
                                        Guid usage_guid) const;

  // User-defined check: runs `check` and synthesizes a wrong-result fault
  // tagged with `guid` when it fails (e.g. "inserted key-value items
  // exist").
  std::optional<FaultInfo> RunUserCheck(const std::function<Status()>& check,
                                        Guid guid) const;

  // "Loosely the same" failure fingerprint comparison.
  bool SimilarFingerprint(const FaultInfo& a, const FaultInfo& b) const;

  const std::optional<FaultInfo>& recorded_failure() const {
    return recorded_;
  }
  void Reset() { recorded_.reset(); }

 private:
  DetectorConfig config_;
  std::optional<FaultInfo> recorded_;
};

}  // namespace arthas

#endif  // ARTHAS_DETECTOR_DETECTOR_H_
