#include "detector/detector.h"

#include <algorithm>

#include "obs/flight_recorder.h"
#include "obs/obs.h"

namespace arthas {

Detector::Assessment Detector::Observe(
    const std::optional<FaultInfo>& fault) {
  ARTHAS_SCOPED_LATENCY("detector.observe.ns");
  if (!fault.has_value() || fault->kind == FailureKind::kNone) {
    return Assessment::kNoFailure;
  }
  ARTHAS_COUNTER_ADD("detector.fault_observed.count", 1);
  if (recorded_.has_value() && SimilarFingerprint(*recorded_, *fault)) {
    ARTHAS_COUNTER_ADD("detector.hard_fault.count", 1);
    ARTHAS_FLIGHT_RECORD(obs::FrType::kFaultObserved, 0,
                         fault->fault_address, 2, fault->fault_guid);
    return Assessment::kSuspectedHardFailure;
  }
  recorded_ = *fault;
  ARTHAS_FLIGHT_RECORD(obs::FrType::kFaultObserved, 0, fault->fault_address,
                       1, fault->fault_guid);
  return Assessment::kFirstFailure;
}

std::optional<FaultInfo> Detector::CheckPmUsage(const PmemPool& pool,
                                                Guid usage_guid) const {
  const double used = static_cast<double>(pool.stats().used_bytes);
  const double capacity = static_cast<double>(pool.Capacity());
  if (capacity <= 0 || used / capacity < config_.leak_usage_fraction) {
    return std::nullopt;
  }
  FaultInfo fault;
  fault.kind = FailureKind::kLeak;
  fault.fault_guid = usage_guid;
  fault.exit_code = 0;
  fault.message = "PM usage monitor: pool " +
                  std::to_string(static_cast<int>(100 * used / capacity)) +
                  "% full";
  fault.pm_used_bytes = pool.stats().used_bytes;
  return fault;
}

std::optional<FaultInfo> Detector::RunUserCheck(
    const std::function<Status()>& check, Guid guid) const {
  const Status status = check();
  if (status.ok()) {
    return std::nullopt;
  }
  FaultInfo fault;
  fault.kind = FailureKind::kWrongResult;
  fault.fault_guid = guid;
  fault.message = "user-defined check failed: " + status.ToString();
  return fault;
}

bool Detector::SimilarFingerprint(const FaultInfo& a,
                                  const FaultInfo& b) const {
  // Resource-exhaustion symptoms form one family: a leak may surface as the
  // usage monitor tripping on one run and as a failed allocation on the
  // next.
  auto family = [](FailureKind kind) {
    return kind == FailureKind::kOutOfSpace ? FailureKind::kLeak : kind;
  };
  if (family(a.kind) != family(b.kind)) {
    return false;
  }
  if (a.fault_guid != kNoGuid && b.fault_guid != kNoGuid) {
    // Matching fault instructions are decisive: the same hard fault often
    // manifests on different stacks (request path vs recovery path).
    return a.fault_guid == b.fault_guid;
  }
  if (a.exit_code != b.exit_code) {
    return false;
  }
  if (a.stack.empty() || b.stack.empty()) {
    return true;  // nothing more to compare
  }
  // Loosely the same stack: enough frames in common, order-insensitive.
  size_t common = 0;
  for (const std::string& frame : a.stack) {
    if (std::find(b.stack.begin(), b.stack.end(), frame) != b.stack.end()) {
      common++;
    }
  }
  const double frac =
      static_cast<double>(common) /
      static_cast<double>(std::max(a.stack.size(), b.stack.size()));
  return frac >= config_.stack_similarity;
}

}  // namespace arthas
