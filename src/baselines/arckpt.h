// ArCkpt baseline (paper Section 6.1).
//
// ArCkpt keeps only the checkpoint-related functionality of Arthas and
// disables the analyzer: it has the fine-grained versioned log, but no PDG
// and no slices, so it reverts checkpoint entries strictly in reverse time
// order, one entry at a time, re-executing after each reversion. The paper
// frames it as a facet of Arthas rather than an independent system: it
// isolates how much of Arthas's effectiveness comes from dependency
// analysis versus fine-grained checkpointing alone.

#ifndef ARTHAS_BASELINES_ARCKPT_H_
#define ARTHAS_BASELINES_ARCKPT_H_

#include "baselines/pmcriu.h"
#include "checkpoint/checkpoint_log.h"
#include "common/clock.h"

namespace arthas {

struct ArCkptConfig {
  VirtualTime reexecution_delay = 4 * kSecond;
  VirtualTime mitigation_timeout = 10 * kMinute;
  int max_attempts = 200;
};

struct ArCkptOutcome {
  bool recovered = false;
  bool timed_out = false;
  int reexecutions = 0;
  uint64_t reverted_updates = 0;
  VirtualTime elapsed = 0;
};

class ArCkpt {
 public:
  explicit ArCkpt(ArCkptConfig config = {}) : config_(config) {}

  // Reverts the newest retained checkpoint entry, re-executes, and repeats
  // until the failure stops, versions run out, or the budget is exhausted.
  ArCkptOutcome Mitigate(CheckpointLog& log, const ReexecuteFn& reexecute,
                         VirtualClock& clock);

 private:
  ArCkptConfig config_;
};

}  // namespace arthas

#endif  // ARTHAS_BASELINES_ARCKPT_H_
