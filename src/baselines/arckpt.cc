#include "baselines/arckpt.h"

#include "common/logging.h"

namespace arthas {

ArCkptOutcome ArCkpt::Mitigate(CheckpointLog& log,
                               const ReexecuteFn& reexecute,
                               VirtualClock& clock) {
  ArCkptOutcome outcome;
  const VirtualTime start = clock.Now();
  for (;;) {
    if (outcome.reexecutions >= config_.max_attempts ||
        clock.Now() - start > config_.mitigation_timeout) {
      outcome.timed_out = true;
      break;
    }
    const SeqNum newest = log.NewestRetainedSeq();
    if (newest == kNoSeq) {
      break;  // nothing left to revert
    }
    if (!log.RevertSeq(newest).ok()) {
      break;
    }
    ARTHAS_LOG(Debug) << "ArCkpt reverted seq " << newest << " at address "
                      << (log.LocateSeq(newest) ? 0 : -1);
    outcome.reverted_updates++;
    clock.Advance(config_.reexecution_delay);
    outcome.reexecutions++;
    const RunObservation obs = reexecute();
    if (!obs.fault.has_value()) {
      outcome.recovered = true;
      break;
    }
  }
  outcome.elapsed = clock.Now() - start;
  return outcome;
}

}  // namespace arthas
