#include "baselines/pmcriu.h"

namespace arthas {

void PmCriu::SnapshotNow(VirtualTime now, uint64_t item_count) {
  snapshots_.push_back({now, device_.SnapshotDurable(), item_count,
                        device_.stats().persists});
  if (snapshots_.size() > config_.max_snapshots) {
    snapshots_.erase(snapshots_.begin());
  }
  last_snapshot_time_ = now;
  any_snapshot_ = true;
}

void PmCriu::MaybeSnapshot(VirtualTime now, uint64_t item_count) {
  if (!any_snapshot_) {
    // CRIU's first dump happens after the first full interval.
    if (now >= config_.snapshot_interval) {
      SnapshotNow(now, item_count);
    }
    return;
  }
  if (now - last_snapshot_time_ >= config_.snapshot_interval) {
    SnapshotNow(now, item_count);
  }
}

PmCriuOutcome PmCriu::Mitigate(const ReexecuteFn& reexecute,
                               VirtualClock& clock) {
  PmCriuOutcome outcome;
  const VirtualTime start = clock.Now();
  for (auto it = snapshots_.rbegin(); it != snapshots_.rend(); ++it) {
    if (clock.Now() - start > config_.mitigation_timeout) {
      break;
    }
    if (!device_.RestoreDurable(it->image).ok()) {
      continue;
    }
    outcome.restores++;
    clock.Advance(config_.restore_delay);
    const RunObservation obs = reexecute();
    if (!obs.fault.has_value()) {
      outcome.recovered = true;
      outcome.restored_item_count = it->item_count;
      outcome.restored_persist_count = it->persist_count;
      break;
    }
  }
  outcome.elapsed = clock.Now() - start;
  return outcome;
}

}  // namespace arthas
