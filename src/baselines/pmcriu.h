// pmCRIU baseline (paper Section 6.1).
//
// CRIU checkpoints a process by freezing it and dumping its entire state
// periodically; the paper enhances it to also snapshot the target's PM pool
// ("pmCRIU") and compares against Arthas. This class reproduces that
// behaviour over the simulated device: a coarse point-in-time copy of the
// durable image once per interval, and mitigation by restoring snapshot
// images newest-first until the failure stops recurring.

#ifndef ARTHAS_BASELINES_PMCRIU_H_
#define ARTHAS_BASELINES_PMCRIU_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "pmem/device.h"
#include "systems/pm_system.h"

namespace arthas {

// Restarts the target and probes whether the failure recurs. (Identical
// alias to the one in reactor/reactor.h; redeclaration of an identical
// alias is well-formed.)
using ReexecuteFn = std::function<RunObservation()>;

struct PmCriuConfig {
  VirtualTime snapshot_interval = 1 * kMinute;  // paper: one dump per minute
  VirtualTime restore_delay = 4 * kSecond;      // restore + re-execution cost
  VirtualTime mitigation_timeout = 10 * kMinute;
  size_t max_snapshots = 32;  // older images are rotated out
};

struct PmCriuOutcome {
  bool recovered = false;
  int restores = 0;  // rollback attempts (Table 5)
  // State preserved by the restored snapshot (for the data-loss metric of
  // Figure 9); meaningful only when recovered.
  uint64_t restored_item_count = 0;
  uint64_t restored_persist_count = 0;
  VirtualTime elapsed = 0;
};

class PmCriu {
 public:
  PmCriu(PmemDevice& device, PmCriuConfig config = {})
      : device_(device), config_(config) {}

  // Called by the harness on every operation; freezes and dumps an image
  // when the interval elapsed. `item_count` annotates the snapshot for the
  // data-loss accounting.
  void MaybeSnapshot(VirtualTime now, uint64_t item_count);

  size_t snapshot_count() const { return snapshots_.size(); }

  // Restores snapshots newest-first, re-executing after each restore, until
  // the failure is gone or images run out.
  PmCriuOutcome Mitigate(const ReexecuteFn& reexecute, VirtualClock& clock);

  // Wall-clock cost knob for the overhead benchmark: performs one dump
  // immediately.
  void SnapshotNow(VirtualTime now, uint64_t item_count);

 private:
  struct Snapshot {
    VirtualTime time = 0;
    std::vector<uint8_t> image;
    uint64_t item_count = 0;
    // Device persist count at snapshot time: how many state updates the
    // image contains (the coarse-restore data-loss accounting).
    uint64_t persist_count = 0;
  };

  PmemDevice& device_;
  PmCriuConfig config_;
  std::vector<Snapshot> snapshots_;
  VirtualTime last_snapshot_time_ = 0;
  bool any_snapshot_ = false;
};

}  // namespace arthas

#endif  // ARTHAS_BASELINES_PMCRIU_H_
