// Fixed-width text-table rendering for the bench binaries, which print the
// paper's tables and figure series.

#ifndef ARTHAS_HARNESS_TABLE_H_
#define ARTHAS_HARNESS_TABLE_H_

#include <string>
#include <vector>

#include "common/clock.h"

namespace arthas {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// "12.3%" style formatting; uses enough precision for tiny fractions
// (Figure 9 reports values down to 3.1e-5%).
std::string FormatPercent(double fraction);

// Virtual time as seconds with one decimal, e.g. "103.6 s".
std::string FormatSeconds(VirtualTime t);

// Renders the global metrics registry as text tables (counters/gauges and
// histogram percentiles); the bench binaries append it after the paper
// tables so a run's raw measurements travel with its rendered output.
std::string RenderMetricsSummary();

}  // namespace arthas

#endif  // ARTHAS_HARNESS_TABLE_H_
