// Fault-experiment harness (paper Section 6.1 methodology).
//
// For each case the target system runs for five (virtual) minutes of
// workload. Ten of the twelve bugs have externally controllable triggers,
// applied half-way through the run; f3 and f8 manifest on their own. When
// the failure is detected — and confirmed hard by recurring across a
// restart — mitigation starts with the chosen solution (Arthas, pmCRIU, or
// ArCkpt), under a 10-minute mitigation timeout. The harness records
// recoverability, rollback attempts, mitigation time, discarded data, and
// runs the semantic-consistency evaluation of Section 6.2.

#ifndef ARTHAS_HARNESS_EXPERIMENT_H_
#define ARTHAS_HARNESS_EXPERIMENT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/arckpt.h"
#include "baselines/pmcriu.h"
#include "checkpoint/checkpoint_log.h"
#include "common/clock.h"
#include "common/rng.h"
#include "detector/detector.h"
#include "faults/fault_ids.h"
#include "reactor/reactor.h"
#include "substrate/substrate.h"
#include "systems/system_base.h"

namespace arthas {

enum class Solution { kArthas, kPmCriu, kArCkpt };
const char* SolutionName(Solution solution);

struct ExperimentConfig {
  FaultId fault = FaultId::kF1RefcountOverflow;
  Solution solution = Solution::kArthas;
  ReactorConfig reactor;
  PmCriuConfig pmcriu;
  ArCkptConfig arckpt;
  // Consistency substrate the target runs under. The default reproduces
  // the paper's stack (per-persist checkpoint log + reversion); kFase
  // swaps in failure-atomic sections, under which the Arthas solution
  // degenerates to refuse-reversion + restart (the reactor reports why).
  SubstrateKind substrate = SubstrateKind::kArthasCheckpoint;
  uint64_t seed = 42;
  VirtualTime run_duration = 5 * kMinute;
  VirtualTime op_interval = 50 * kMillisecond;  // 20 ops/s of workload
  // Run the post-recovery consistency evaluation (pool checks, stability
  // workload, value verification).
  bool evaluate_consistency = false;
  // After a successful mitigation, run this many more workload ops (at
  // op_interval virtual pacing). 0 = stop at mitigation like the paper's
  // tables; the timeline benches set it so the live telemetry sampler can
  // observe throughput *recovering*, not just collapsing.
  int post_recovery_ops = 0;
};

struct ExperimentResult {
  FaultId fault = FaultId::kNone;
  Solution solution = Solution::kArthas;
  bool triggered = false;
  bool detected = false;
  bool recovered = false;
  bool timed_out = false;
  bool empty_plan = false;
  // Rollback / restore attempts (Table 5).
  int attempts = 0;
  // Time from mitigation start to a passing re-execution (Figure 8).
  VirtualTime mitigation_time = 0;
  // Data-loss accounting (Figure 9).
  uint64_t items_before = 0;
  uint64_t items_after = 0;
  uint64_t checkpoint_updates_total = 0;
  uint64_t checkpoint_updates_discarded = 0;
  double discarded_fraction = 0.0;
  uint64_t leaked_objects_freed = 0;
  // Reversion was refused because the substrate keeps no version history
  // (FASE); mitigation degenerated to restart + section rollback.
  bool reversion_refused = false;
  // Consistency evaluation (Table 4); meaningful when requested & recovered.
  bool consistent = false;
  std::string detail;
};

class FaultExperiment {
 public:
  explicit FaultExperiment(ExperimentConfig config);
  ~FaultExperiment();

  ExperimentResult Run();

  // Access to the reactor's static-analysis timings (Table 9) after Run().
  const Reactor* reactor() const { return reactor_.get(); }

 private:
  // The experiment proper; Run() wraps it with the per-cell observability
  // bookkeeping (span, registry snapshots, cell record).
  ExperimentResult RunInner();
  // Per-fault wiring (system construction, workload step, trigger, probes).
  void BuildScript();
  void WorkloadStep();
  void ApplyTrigger();
  // Issues the fault-specific probing requests against the live system;
  // any fault is latched in the system.
  void BugCheck();
  // Restart + recovery + bug check: what the re-execution script observes.
  RunObservation Reexecute();
  // Section 6.2 consistency evaluation.
  bool EvaluateConsistency();

  uint64_t CurrentSeconds() const;

  ExperimentConfig config_;
  Rng rng_;
  VirtualClock clock_;
  Detector detector_;
  std::unique_ptr<PmSystemBase> system_;
  // The consistency substrate the cell runs under; checkpoint_ borrows the
  // substrate's log (null under FASE — everything that needs a log must
  // refuse instead).
  std::unique_ptr<ConsistencySubstrate> substrate_;
  CheckpointLog* checkpoint_ = nullptr;
  std::unique_ptr<PmCriu> pmcriu_;
  std::unique_ptr<Reactor> reactor_;

  // Script state.
  std::function<void()> workload_op_;
  std::function<void()> trigger_;
  std::function<void()> bug_check_;
  std::function<Status()> value_check_;
  VirtualTime trigger_at_ = 0;
  bool triggered_ = false;
  // How often (in ops) the failing request recurs after the trigger.
  // Faults whose victim is touched by the very next request (f4, f10)
  // manifest immediately; others surface when some client eventually
  // issues the affected request.
  uint64_t bug_check_every_ops_ = 1200;
  uint64_t op_index_ = 0;
  std::map<std::string, std::string> expected_;  // probe keys -> values
  std::vector<std::string> probe_keys_;
  bool leak_fault_ = false;
  Guid leak_guid_ = kNoGuid;
};

// Convenience: run one (fault, solution) cell with default settings.
ExperimentResult RunCell(FaultId fault, Solution solution, uint64_t seed = 42,
                         ReversionMode mode = ReversionMode::kPurge,
                         bool evaluate_consistency = false,
                         SubstrateKind substrate =
                             SubstrateKind::kArthasCheckpoint);

}  // namespace arthas

#endif  // ARTHAS_HARNESS_EXPERIMENT_H_
