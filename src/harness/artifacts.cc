#include "harness/artifacts.h"

#include <cstdio>
#include <cstring>
#include <mutex>

#include "common/logging.h"
#include "obs/forensics.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "obs/timeseries.h"

namespace arthas {

namespace {

std::mutex& CellMutex() {
  static std::mutex* mutex = new std::mutex();
  return *mutex;
}

std::vector<CellRecord>& CellStore() {
  static std::vector<CellRecord>* store = new std::vector<CellRecord>();
  return *store;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Internal("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (written != content.size()) {
    return Internal("short write to " + path);
  }
  return OkStatus();
}

}  // namespace

void RecordCell(CellRecord record) {
  std::lock_guard<std::mutex> lock(CellMutex());
  CellStore().push_back(std::move(record));
}

std::vector<CellRecord> CellRecords() {
  std::lock_guard<std::mutex> lock(CellMutex());
  return CellStore();
}

void ClearCellRecords() {
  std::lock_guard<std::mutex> lock(CellMutex());
  CellStore().clear();
}

std::string MetricsArtifactJson() {
  obs::JsonValue out = obs::MetricsRegistry::Global().SnapshotJson();
  obs::JsonValue cells = obs::JsonValue::Array();
  for (const CellRecord& record : CellRecords()) {
    obs::JsonValue cell = obs::JsonValue::Object();
    cell.Set("fault", obs::JsonValue(record.fault));
    cell.Set("solution", obs::JsonValue(record.solution));
    cell.Set("substrate", obs::JsonValue(record.substrate));
    cell.Set("recovered", obs::JsonValue(record.recovered));
    cell.Set("attempts", obs::JsonValue(int64_t{record.attempts}));
    cell.Set("mitigation_time_us",
             obs::JsonValue(record.mitigation_time_us));
    obs::JsonValue forensics = obs::JsonValue::Object();
    forensics.Set("lost_lines", obs::JsonValue(record.forensics_lost_lines));
    forensics.Set("open_transactions",
                  obs::JsonValue(record.forensics_open_txs));
    forensics.Set("open_sections",
                  obs::JsonValue(record.forensics_open_sections));
    forensics.Set("summary", obs::JsonValue(record.forensics_summary));
    cell.Set("forensics", std::move(forensics));
    obs::JsonValue deltas = obs::JsonValue::Object();
    for (const auto& [name, delta] : record.counter_deltas) {
      deltas.Set(name, obs::JsonValue(delta));
    }
    cell.Set("counter_deltas", std::move(deltas));
    cells.Append(std::move(cell));
  }
  out.Set("cells", std::move(cells));
  return out.Dump();
}

ObsArtifactWriter::ObsArtifactWriter(int argc, char** argv) {
  std::string prefix;
  // The profile flags take an *optional* path ("--profile-json --diff"
  // works); a following argument that looks like another flag is left alone
  // and a default filename is used instead.
  auto optional_path = [&](int& i, const char* fallback) -> std::string {
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      return argv[++i];
    }
    return fallback;
  };
  for (int i = 1; i < argc; i++) {
    if (i + 1 >= argc) {
      if (std::strcmp(argv[i], "--profile-json") == 0) {
        profile_json_path_ = "profile.json";
      } else if (std::strcmp(argv[i], "--profile-folded") == 0) {
        profile_folded_path_ = "profile.folded";
      }
      break;
    }
    if (std::strcmp(argv[i], "--metrics-json") == 0) {
      metrics_path_ = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-json") == 0) {
      trace_path_ = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-summary") == 0) {
      summary_path_ = argv[++i];
    } else if (std::strcmp(argv[i], "--forensics-json") == 0) {
      forensics_json_path_ = argv[++i];
    } else if (std::strcmp(argv[i], "--forensics-text") == 0) {
      forensics_text_path_ = argv[++i];
    } else if (std::strcmp(argv[i], "--timeline-json") == 0) {
      timeline_path_ = argv[++i];
    } else if (std::strcmp(argv[i], "--profile-json") == 0) {
      profile_json_path_ = optional_path(i, "profile.json");
    } else if (std::strcmp(argv[i], "--profile-folded") == 0) {
      profile_folded_path_ = optional_path(i, "profile.folded");
    } else if (std::strcmp(argv[i], "--obs-prefix") == 0) {
      prefix = argv[++i];
    }
  }
  if (!prefix.empty()) {
    // The convenience spelling: one DIR/stem derives every artifact path.
    // Explicit per-artifact flags keep priority regardless of flag order.
    if (metrics_path_.empty()) {
      metrics_path_ = prefix + ".metrics.json";
    }
    if (trace_path_.empty()) {
      trace_path_ = prefix + ".trace.json";
    }
    if (summary_path_.empty()) {
      summary_path_ = prefix + ".summary.txt";
    }
    if (forensics_json_path_.empty()) {
      forensics_json_path_ = prefix + ".forensics.json";
    }
    if (forensics_text_path_.empty()) {
      forensics_text_path_ = prefix + ".forensics.txt";
    }
    if (timeline_path_.empty()) {
      timeline_path_ = prefix + ".timeline.json";
    }
    if (profile_json_path_.empty()) {
      profile_json_path_ = prefix + ".profile.json";
    }
    if (profile_folded_path_.empty()) {
      profile_folded_path_ = prefix + ".profile.folded";
    }
  }
  // Asking for a profile artifact (directly or via --obs-prefix) means the
  // process's hot-path scopes should record; without this a generic bench
  // would export an all-zero profile. Benches that bracket their own
  // measured windows (bench_hotpath) turn the profiler back off before
  // their unprofiled timing passes.
  if (!profile_json_path_.empty() || !profile_folded_path_.empty()) {
    obs::PhaseProfiler::Global().set_enabled(true);
  }
}

void ObsArtifactWriter::SetProfileDocument(std::string json) {
  profile_document_ = std::move(json);
}

void ObsArtifactWriter::SetProfileFolded(std::string folded) {
  profile_folded_override_ = std::move(folded);
}

ObsArtifactWriter::~ObsArtifactWriter() {
  if (Status s = WriteNow(); !s.ok()) {
    ARTHAS_LOG(Error) << "failed to write observability artifacts: "
                      << s.ToString();
  }
}

Status ObsArtifactWriter::WriteNow() const {
  if (!metrics_path_.empty()) {
    ARTHAS_RETURN_IF_ERROR(WriteFile(metrics_path_, MetricsArtifactJson()));
  }
  if (!trace_path_.empty()) {
    ARTHAS_RETURN_IF_ERROR(
        WriteFile(trace_path_, obs::SpanTracer::Global().ExportChromeJson()));
  }
  if (!summary_path_.empty()) {
    std::string summary = obs::SpanTracer::Global().ExportTextSummary();
    summary += obs::MetricsRegistry::Global().LatencyTable();
    summary += obs::MetricsRegistry::Global().SnapshotJsonString();
    summary += "\n";
    ARTHAS_RETURN_IF_ERROR(WriteFile(summary_path_, summary));
  }
  if (!forensics_json_path_.empty() || !forensics_text_path_.empty()) {
    // A run with no crash still produces a well-formed artifact: the
    // default report carries present=false and an explanatory summary.
    obs::ForensicsReport report =
        obs::LatestForensics().value_or(obs::ForensicsReport{});
    if (!forensics_json_path_.empty()) {
      ARTHAS_RETURN_IF_ERROR(
          WriteFile(forensics_json_path_, report.ToJsonString()));
    }
    if (!forensics_text_path_.empty()) {
      ARTHAS_RETURN_IF_ERROR(
          WriteFile(forensics_text_path_, report.ToText()));
    }
  }
  if (!timeline_path_.empty()) {
    ARTHAS_RETURN_IF_ERROR(WriteFile(
        timeline_path_,
        obs::TimelineArtifactJson(obs::TelemetrySampler::Global()).Dump()));
  }
  if (!profile_json_path_.empty()) {
    std::string document = profile_document_;
    if (document.empty()) {
      // Generic export: whatever the global profiler accumulated, as one
      // unnamed variant (ops unknown, so no per-op normalization).
      const obs::ProfileSnapshot snapshot =
          obs::PhaseProfiler::Global().Snapshot();
      std::vector<obs::JsonValue> variants;
      variants.push_back(obs::ProfileVariantJson("process", snapshot, 0, 0));
      document = obs::ProfileDocumentJson(std::move(variants)).Dump();
    }
    ARTHAS_RETURN_IF_ERROR(WriteFile(profile_json_path_, document));
  }
  if (!profile_folded_path_.empty()) {
    std::string folded = profile_folded_override_;
    if (folded.empty()) {
      folded = obs::FoldedStacks(obs::PhaseProfiler::Global().Snapshot(),
                                 "process");
    }
    ARTHAS_RETURN_IF_ERROR(WriteFile(profile_folded_path_, folded));
  }
  return OkStatus();
}

}  // namespace arthas
