// Observability artifacts for the bench binaries.
//
// Every bench binary accepts
//   --metrics-json <path>   registry snapshot + per-cell records as JSON
//   --trace-json <path>     Chrome trace-event JSON (chrome://tracing)
//   --metrics-summary <path> flat text summary (spans + latency percentiles)
//   --forensics-json <path>  latest crash-forensics report as JSON
//   --forensics-text <path>  the same report as a human-readable narrative
//   --timeline-json <path>   telemetry-sampler series + recovery timeline
//   --profile-json <path>    phase-profiler snapshot (schema-versioned)
//   --profile-folded <path>  folded stacks for flamegraph tooling
//   --obs-prefix <dir/stem>  derives every artifact path at once:
//                            <stem>.metrics.json, <stem>.trace.json,
//                            <stem>.summary.txt, <stem>.forensics.json,
//                            <stem>.forensics.txt, <stem>.timeline.json,
//                            <stem>.profile.json, <stem>.profile.folded
//                            (an explicit per-artifact flag still overrides)
// and writes them when the ObsArtifactWriter goes out of scope in main().
//
// The experiment harness appends one CellRecord per (fault, solution) cell
// it runs; the records end up under "cells" in the metrics artifact so a
// table row can be joined back to the raw counter deltas that produced it.

#ifndef ARTHAS_HARNESS_ARTIFACTS_H_
#define ARTHAS_HARNESS_ARTIFACTS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace arthas {

struct CellRecord {
  std::string fault;     // fault label, e.g. "f1"
  std::string solution;  // "Arthas" / "pmCRIU" / "ArCkpt"
  std::string substrate;  // consistency substrate, "arthas" / "fase"
  bool recovered = false;
  int attempts = 0;
  int64_t mitigation_time_us = 0;  // virtual time
  // Crash-forensics digest for the cell (zero / empty when the run ended
  // without a crash or the flight recorder is compiled out).
  uint64_t forensics_lost_lines = 0;
  uint64_t forensics_open_txs = 0;
  uint64_t forensics_open_sections = 0;
  std::string forensics_summary;
  // Registry counter movement attributable to this cell (after - before).
  std::map<std::string, uint64_t> counter_deltas;
};

// Process-global per-cell accumulator (appended by FaultExperiment::Run).
void RecordCell(CellRecord record);
std::vector<CellRecord> CellRecords();
void ClearCellRecords();

// The metrics artifact: {"counters", "gauges", "histograms", "cells"}.
std::string MetricsArtifactJson();

// Parses --metrics-json/--trace-json/--metrics-summary out of argv and
// writes the artifacts at scope exit (i.e. when main() returns).
class ObsArtifactWriter {
 public:
  ObsArtifactWriter(int argc, char** argv);
  ~ObsArtifactWriter();

  ObsArtifactWriter(const ObsArtifactWriter&) = delete;
  ObsArtifactWriter& operator=(const ObsArtifactWriter&) = delete;

  // Writes whichever artifacts were requested, immediately. The destructor
  // writes again (overwriting) so late metrics still land.
  Status WriteNow() const;

  const std::string& metrics_path() const { return metrics_path_; }
  const std::string& trace_path() const { return trace_path_; }
  const std::string& timeline_path() const { return timeline_path_; }
  const std::string& profile_json_path() const { return profile_json_path_; }
  const std::string& profile_folded_path() const {
    return profile_folded_path_;
  }

  // Overrides for the profile artifacts. By default the writer exports a
  // generic snapshot of the global profiler; a bench that builds a richer
  // document (per-variant attribution, a diff section) sets it here and the
  // writer emits that instead of clobbering it with the generic dump.
  void SetProfileDocument(std::string json);
  void SetProfileFolded(std::string folded);

 private:
  std::string metrics_path_;
  std::string trace_path_;
  std::string summary_path_;
  std::string forensics_json_path_;
  std::string forensics_text_path_;
  std::string timeline_path_;
  std::string profile_json_path_;
  std::string profile_folded_path_;
  std::string profile_document_;  // empty = export the generic snapshot
  std::string profile_folded_override_;
};

}  // namespace arthas

#endif  // ARTHAS_HARNESS_ARTIFACTS_H_
