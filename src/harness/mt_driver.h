// Multi-threaded YCSB driver (paper Section 6.7 measurement conditions).
//
// The paper's Figure 12 / Table 8 overhead numbers are defined over
// 4-thread YCSB runs. This driver reproduces that shape: N client threads,
// each with its own YcsbWorkload stream (distinct seeds), issue requests
// against ONE target system. By default Handle() calls are serialized
// behind the system's coarse request lock (PmSystemTarget::request_mutex())
// — exactly like memcached worker threads contending on cache_lock — while
// request generation and the simulated client-side work run outside the
// lock and genuinely in parallel. With lock_mode == kSharded, systems that
// support it run key-local requests under key-hashed lock stripes instead
// (see RequestGuard in systems/pm_system.h), so non-colliding keys proceed
// concurrently. The PM substrate below (device stripes, pool mutex,
// checkpoint shards, tracer buffers) runs concurrently on its own locks
// either way.
//
// Per-thread operation and latency counters are merged into the global obs
// registry after the run (`driver.ops.count`, `driver.op.latency.ns`).
//
// With threads == 1 the driver is a plain loop: one workload stream with
// the base seed, same request sequence as the single-threaded benches.

#ifndef ARTHAS_HARNESS_MT_DRIVER_H_
#define ARTHAS_HARNESS_MT_DRIVER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "obs/metrics.h"
#include "systems/pm_system.h"
#include "workload/ycsb.h"

namespace arthas {

struct MtDriverConfig {
  int threads = 1;
  // Operations issued by EACH thread (total = threads * ops_per_thread).
  uint64_t ops_per_thread = 10000;
  // Thread t's workload stream is seeded with base_seed + t, so thread 0 of
  // a 1-thread run replays exactly the single-threaded request sequence.
  uint64_t base_seed = 7;
  YcsbConfig workload;
  // Client-side work performed per operation OUTSIDE the system's request
  // lock (e.g. the benches' SimulatedRequestWork). May be empty.
  std::function<void()> per_op_work;
  // Closed-loop client think time: each thread blocks this long between
  // operations (after its response, before its next request), modelling the
  // network round-trip a real YCSB client spends off-CPU. Think-time waits
  // overlap across threads, so aggregate throughput scales with the client
  // count until the server's request lock saturates — the standard
  // closed-loop scaling shape. Zero (the default) disables it.
  std::chrono::nanoseconds think_time{0};
  // How Handle() calls are serialized: coarse (one lock, the default) or
  // sharded (key-hashed stripes, for systems that support it). The driver
  // sets the mode on the system for the run and restores kCoarse after.
  RequestLockMode lock_mode = RequestLockMode::kCoarse;
  // Consistency substrate for the run. When set, the driver installs it on
  // the system (so each RequestGuard demarcates one failure-atomic
  // section) and uninstalls it after the run. The caller owns the
  // substrate and must have Attach()ed it to the system's pool; null keeps
  // whatever the system already has.
  ConsistencySubstrate* substrate = nullptr;
};

struct MtDriverResult {
  uint64_t total_ops = 0;
  double elapsed_seconds = 0;
  double ops_per_second = 0;  // aggregate across threads
  std::vector<uint64_t> per_thread_ops;
  // End-to-end per-operation latency (request generation + client work +
  // locked Handle), merged across threads.
  obs::HistogramSnapshot latency;
};

class MultiThreadedDriver {
 public:
  MultiThreadedDriver(PmSystemTarget& system, MtDriverConfig config);

  // Runs threads * ops_per_thread operations and blocks until all client
  // threads joined. Not reentrant; run one driver at a time per system.
  MtDriverResult Run();

 private:
  PmSystemTarget& system_;
  MtDriverConfig config_;
};

}  // namespace arthas

#endif  // ARTHAS_HARNESS_MT_DRIVER_H_
