// The live-telemetry timeline scenario behind `--timeline-json`.
//
// The paper's central evaluation claim (Section 6 recovery figures) is a
// *timeline*: throughput collapses when a hard fault fires, the detector
// notices, the reactor reverts, and throughput recovers within seconds.
// This helper runs one (fault, solution) cell under the global
// TelemetrySampler — resetting and starting it around the cell, with a
// post-recovery workload tail so the sampler actually sees throughput
// return — and hands back the analyzed TimelineReport. bench_recovery and
// bench_data_loss call it when --timeline-json (or --obs-prefix) is given;
// the ObsArtifactWriter then exports the sampler's series, markers, and
// the derived time_to_detect_ns / time_to_recover_ns as the artifact.

#ifndef ARTHAS_HARNESS_TIMELINE_SCENARIO_H_
#define ARTHAS_HARNESS_TIMELINE_SCENARIO_H_

#include "harness/experiment.h"
#include "obs/timeseries.h"

namespace arthas {

struct TimelineScenarioConfig {
  FaultId fault = FaultId::kF1RefcountOverflow;
  Solution solution = Solution::kArthas;
  uint64_t seed = 42;
  // The virtual-clock harness compresses a 5-minute run into tens of real
  // milliseconds, so the sampler ticks much faster than its 10 ms default
  // to give the analyzer enough pre-fault and post-recovery rate samples.
  int64_t sampler_interval_ns = 200 * 1000;  // 200 us
  // Workload ops run after a successful mitigation (the recovery tail).
  // Sized so the tail spans well over sustain_samples sampler ticks even
  // for cells whose fault fires early (f3 latches within the first
  // thousand ops, leaving the tail as almost the whole sampled window).
  int post_recovery_ops = 20000;
};

struct TimelineScenarioOutcome {
  ExperimentResult result;
  obs::TimelineReport report;
};

// Runs the cell under live sampling. On return the global sampler is
// stopped but still holds the scenario's series and markers (for the
// artifact writer); any series it held before are dropped.
TimelineScenarioOutcome RunTimelineScenario(
    const TimelineScenarioConfig& config = {});

}  // namespace arthas

#endif  // ARTHAS_HARNESS_TIMELINE_SCENARIO_H_
