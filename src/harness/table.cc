#include "harness/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/metrics.h"

namespace arthas {

std::string TextTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); i++) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); i++) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); i++) {
      const std::string& cell = i < cells.size() ? cells[i] : "";
      out << (i == 0 ? "| " : " | ") << cell
          << std::string(widths[i] - cell.size(), ' ');
    }
    out << " |\n";
  };
  auto emit_rule = [&] {
    for (size_t i = 0; i < widths.size(); i++) {
      out << (i == 0 ? "+" : "+") << std::string(widths[i] + 2, '-');
    }
    out << "+\n";
  };
  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) {
    emit_row(row);
  }
  emit_rule();
  return out.str();
}

std::string FormatPercent(double fraction) {
  char buf[32];
  const double pct = fraction * 100.0;
  if (pct != 0.0 && pct < 0.01) {
    std::snprintf(buf, sizeof(buf), "%.1e%%", pct);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%%", pct);
  }
  return buf;
}

std::string FormatSeconds(VirtualTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f s",
                static_cast<double>(t) / static_cast<double>(kSecond));
  return buf;
}

std::string RenderMetricsSummary() {
  const obs::RegistrySnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  std::ostringstream out;
  if (!snap.counters.empty() || !snap.gauges.empty()) {
    TextTable values({"metric", "kind", "value"});
    for (const auto& [name, value] : snap.counters) {
      values.AddRow({name, "counter", std::to_string(value)});
    }
    for (const auto& [name, value] : snap.gauges) {
      values.AddRow({name, "gauge", std::to_string(value)});
    }
    out << "metrics\n" << values.Render();
  }
  if (!snap.histograms.empty()) {
    TextTable hist({"histogram", "count", "p50", "p90", "p99", "max"});
    auto fmt = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0f", v);
      return std::string(buf);
    };
    for (const auto& [name, h] : snap.histograms) {
      hist.AddRow({name, std::to_string(h.count), fmt(h.p50), fmt(h.p90),
                   fmt(h.p99), std::to_string(h.max)});
    }
    out << "histograms\n" << hist.Render();
  }
  return out.str();
}

}  // namespace arthas
