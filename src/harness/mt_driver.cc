#include "harness/mt_driver.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "common/clock.h"
#include "obs/obs.h"
#include "obs/timeseries.h"

namespace arthas {

MultiThreadedDriver::MultiThreadedDriver(PmSystemTarget& system,
                                         MtDriverConfig config)
    : system_(system), config_(std::move(config)) {}

MtDriverResult MultiThreadedDriver::Run() {
  const int threads = config_.threads < 1 ? 1 : config_.threads;
  system_.set_lock_mode(config_.lock_mode);
  if (config_.substrate != nullptr) {
    system_.set_substrate(config_.substrate);
  }

  struct ThreadState {
    uint64_t ops = 0;
    obs::Histogram latency;
  };
  std::vector<std::unique_ptr<ThreadState>> states;
  states.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; t++) {
    states.push_back(std::make_unique<ThreadState>());
  }

  // Live telemetry: cumulative ops and latency-sum across all client
  // threads, published to the sampler as probes. Two relaxed fetch_adds per
  // op — negligible against a microsecond-scale Handle(), and the series
  // lets the Stats/Health endpoints (and the timeline artifact) watch a
  // run's throughput while it happens, not just its end-of-run merge.
  std::atomic<uint64_t> live_ops{0};
  std::atomic<uint64_t> live_latency_sum_ns{0};
  const obs::ProbeId ops_probe = ARTHAS_TELEMETRY_PROBE(
      "driver.live.ops", obs::ProbeKind::kCounter,
      [&live_ops] {
        return static_cast<double>(live_ops.load(std::memory_order_relaxed));
      });
  const obs::ProbeId latency_probe = ARTHAS_TELEMETRY_PROBE(
      "driver.live.latency.avg_ns", obs::ProbeKind::kGauge,
      [&live_ops, &live_latency_sum_ns] {
        const uint64_t ops = live_ops.load(std::memory_order_relaxed);
        const uint64_t sum =
            live_latency_sum_ns.load(std::memory_order_relaxed);
        return ops == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(ops);
      });
  ARTHAS_TIMELINE_MARK("driver.run.start");

  // All threads spin at the start line until the clock starts, so the
  // measured window covers pure steady-state traffic, not thread spawn.
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([this, t, &go, state = states[t].get(), &live_ops,
                          &live_latency_sum_ns] {
      YcsbWorkload workload(config_.workload,
                            config_.base_seed + static_cast<uint64_t>(t));
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < config_.ops_per_thread; i++) {
        const int64_t op_start = MonotonicNanos();
        // Request generation and client-side work run outside the system's
        // request lock — this is the parallelism a multi-threaded server
        // actually has when its store is coarsely locked.
        Request request = workload.Next();
        if (config_.per_op_work) {
          config_.per_op_work();
        }
        {
          RequestGuard guard(system_, request);
          system_.Handle(request);
        }
        const uint64_t op_ns =
            static_cast<uint64_t>(MonotonicNanos() - op_start);
        state->latency.Record(op_ns);
        state->ops++;
        live_ops.fetch_add(1, std::memory_order_relaxed);
        live_latency_sum_ns.fetch_add(op_ns, std::memory_order_relaxed);
        // Off-CPU between operations: the closed-loop client's network
        // round-trip. Not part of the recorded op latency.
        if (config_.think_time.count() > 0) {
          std::this_thread::sleep_for(config_.think_time);
        }
      }
    });
  }

  const int64_t start = MonotonicNanos();
  go.store(true, std::memory_order_release);
  for (std::thread& worker : workers) {
    worker.join();
  }
  const int64_t elapsed = MonotonicNanos() - start;

  ARTHAS_TIMELINE_MARK("driver.run.end");
  // The probes capture stack locals: unregister before they go out of
  // scope (UnregisterProbe blocks out any in-flight sampler tick).
  ARTHAS_TELEMETRY_UNPROBE(ops_probe);
  ARTHAS_TELEMETRY_UNPROBE(latency_probe);

  // A trailing maintenance request (e.g. a hashtable expansion triggered by
  // the last insert) must not be left pending: drain it so sharded runs end
  // in the same structural state a coarse run reaches inline.
  system_.DrainPendingMaintenance();
  system_.set_lock_mode(RequestLockMode::kCoarse);
  if (config_.substrate != nullptr) {
    system_.set_substrate(nullptr);
  }

  MtDriverResult result;
  obs::Histogram merged;
  for (const auto& state : states) {
    result.total_ops += state->ops;
    result.per_thread_ops.push_back(state->ops);
    merged.Merge(state->latency);
    // Merge the per-thread counters into the global obs registry.
    ARTHAS_COUNTER_ADD("driver.ops.count", state->ops);
  }
#ifndef ARTHAS_OBS_DISABLED
  obs::MetricsRegistry::Global()
      .GetHistogram("driver.op.latency.ns")
      .Merge(merged);
#endif
  result.latency = merged.Snapshot();
  result.elapsed_seconds = static_cast<double>(elapsed) / 1e9;
  result.ops_per_second =
      result.elapsed_seconds > 0
          ? static_cast<double>(result.total_ops) / result.elapsed_seconds
          : 0;
  return result;
}

}  // namespace arthas
