#include "harness/mt_driver.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "common/clock.h"
#include "obs/obs.h"

namespace arthas {

MultiThreadedDriver::MultiThreadedDriver(PmSystemTarget& system,
                                         MtDriverConfig config)
    : system_(system), config_(std::move(config)) {}

MtDriverResult MultiThreadedDriver::Run() {
  const int threads = config_.threads < 1 ? 1 : config_.threads;
  system_.set_lock_mode(config_.lock_mode);

  struct ThreadState {
    uint64_t ops = 0;
    obs::Histogram latency;
  };
  std::vector<std::unique_ptr<ThreadState>> states;
  states.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; t++) {
    states.push_back(std::make_unique<ThreadState>());
  }

  // All threads spin at the start line until the clock starts, so the
  // measured window covers pure steady-state traffic, not thread spawn.
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([this, t, &go, state = states[t].get()] {
      YcsbWorkload workload(config_.workload,
                            config_.base_seed + static_cast<uint64_t>(t));
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < config_.ops_per_thread; i++) {
        const int64_t op_start = MonotonicNanos();
        // Request generation and client-side work run outside the system's
        // request lock — this is the parallelism a multi-threaded server
        // actually has when its store is coarsely locked.
        Request request = workload.Next();
        if (config_.per_op_work) {
          config_.per_op_work();
        }
        {
          RequestGuard guard(system_, request);
          system_.Handle(request);
        }
        state->latency.Record(
            static_cast<uint64_t>(MonotonicNanos() - op_start));
        state->ops++;
        // Off-CPU between operations: the closed-loop client's network
        // round-trip. Not part of the recorded op latency.
        if (config_.think_time.count() > 0) {
          std::this_thread::sleep_for(config_.think_time);
        }
      }
    });
  }

  const int64_t start = MonotonicNanos();
  go.store(true, std::memory_order_release);
  for (std::thread& worker : workers) {
    worker.join();
  }
  const int64_t elapsed = MonotonicNanos() - start;

  // A trailing maintenance request (e.g. a hashtable expansion triggered by
  // the last insert) must not be left pending: drain it so sharded runs end
  // in the same structural state a coarse run reaches inline.
  system_.DrainPendingMaintenance();
  system_.set_lock_mode(RequestLockMode::kCoarse);

  MtDriverResult result;
  obs::Histogram merged;
  for (const auto& state : states) {
    result.total_ops += state->ops;
    result.per_thread_ops.push_back(state->ops);
    merged.Merge(state->latency);
    // Merge the per-thread counters into the global obs registry.
    ARTHAS_COUNTER_ADD("driver.ops.count", state->ops);
  }
#ifndef ARTHAS_OBS_DISABLED
  obs::MetricsRegistry::Global()
      .GetHistogram("driver.op.latency.ns")
      .Merge(merged);
#endif
  result.latency = merged.Snapshot();
  result.elapsed_seconds = static_cast<double>(elapsed) / 1e9;
  result.ops_per_second =
      result.elapsed_seconds > 0
          ? static_cast<double>(result.total_ops) / result.elapsed_seconds
          : 0;
  return result;
}

}  // namespace arthas
