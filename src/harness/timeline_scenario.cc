#include "harness/timeline_scenario.h"

#include <chrono>
#include <thread>

namespace arthas {

TimelineScenarioOutcome RunTimelineScenario(
    const TimelineScenarioConfig& config) {
  obs::TelemetrySampler& sampler = obs::TelemetrySampler::Global();
  sampler.Stop();
  sampler.Reset();
  obs::SamplerOptions options;
  options.interval_ns = config.sampler_interval_ns;
  sampler.Configure(options);
  sampler.Start();
  // Wait for the sampler thread to actually tick before the cell starts:
  // thread spawn plus the first registry snapshot (which copies every
  // histogram the preceding bench cells accumulated) can cost multiple
  // milliseconds cold — long enough to swallow the whole pre-fault phase
  // and leave the analyzer without a throughput baseline.
  const auto warmup_deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  while (sampler.samples_taken() < 3 &&
         std::chrono::steady_clock::now() < warmup_deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  ExperimentConfig cell;
  cell.fault = config.fault;
  cell.solution = config.solution;
  cell.seed = config.seed;
  cell.post_recovery_ops = config.post_recovery_ops;
  FaultExperiment experiment(cell);

  TimelineScenarioOutcome outcome;
  outcome.result = experiment.Run();

  sampler.Stop();
  outcome.report = obs::TimelineAnalyzer().Analyze(sampler);
  return outcome;
}

}  // namespace arthas
