#include "harness/experiment.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "faults/study.h"
#include "harness/artifacts.h"
#include "obs/forensics.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/timeseries.h"
#include "systems/cceh.h"
#include "systems/memcached_mini.h"
#include "systems/pelikan_mini.h"
#include "systems/pmemkv_mini.h"
#include "systems/redis_mini.h"
#include "workload/ycsb.h"

namespace arthas {

namespace {

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
  }
  return h;
}

// Finds `n` distinct keys hashing to the same bucket (mod `buckets`).
std::vector<std::string> CollidingKeys(uint64_t buckets, int n,
                                       const std::string& seed_key) {
  std::vector<std::string> keys = {seed_key};
  const uint64_t target = Fnv1a(seed_key) % buckets;
  for (int i = 0; static_cast<int>(keys.size()) < n; i++) {
    std::string candidate = "c" + std::to_string(i);
    if (Fnv1a(candidate) % buckets == target) {
      keys.push_back(candidate);
    }
  }
  return keys;
}

Request MakePut(const std::string& k, const std::string& v) {
  Request r;
  r.op = Request::Op::kPut;
  r.key = k;
  r.value = v;
  return r;
}

Request MakeGet(const std::string& k, bool must_exist = false) {
  Request r;
  r.op = Request::Op::kGet;
  r.key = k;
  r.must_exist = must_exist;
  return r;
}

Request MakeOp(Request::Op op, const std::string& k,
               const std::string& v = "") {
  Request r;
  r.op = op;
  r.key = k;
  r.value = v;
  return r;
}

}  // namespace

const char* SolutionName(Solution solution) {
  switch (solution) {
    case Solution::kArthas:
      return "Arthas";
    case Solution::kPmCriu:
      return "pmCRIU";
    case Solution::kArCkpt:
      return "ArCkpt";
  }
  return "?";
}

FaultExperiment::FaultExperiment(ExperimentConfig config)
    : config_(config), rng_(config.seed) {}

FaultExperiment::~FaultExperiment() = default;

uint64_t FaultExperiment::CurrentSeconds() const {
  return static_cast<uint64_t>(clock_.Now() / kSecond);
}

void FaultExperiment::BuildScript() {
  const FaultId fault = config_.fault;
  trigger_at_ = config_.run_duration / 2;
  value_check_ = [] { return OkStatus(); };

  // --- Memcached faults (f1-f5) ---------------------------------------------
  if (fault == FaultId::kF1RefcountOverflow ||
      fault == FaultId::kF2FlushAllLogic ||
      fault == FaultId::kF3HashtableLockRace ||
      fault == FaultId::kF4AppendIntOverflow ||
      fault == FaultId::kF5RehashFlagBitflip) {
    MemcachedOptions options;
    if (fault == FaultId::kF5RehashFlagBitflip) {
      options.hashtable_buckets = 16;  // expand early so the rehash flag has
                                       // a checkpointed history
    } else {
      // Production-sized table: the workload's keys do not share buckets
      // with the fault's keys.
      options.hashtable_buckets = 1024;
    }
    auto mc = std::make_unique<MemcachedMini>(options);
    MemcachedMini* sys = mc.get();
    system_ = std::move(mc);

    YcsbConfig wl;
    // f5 uses a small uniform key space so the table expands early (giving
    // the rehash flag a checkpointed history).
    wl.key_space = fault == FaultId::kF5RehashFlagBitflip ? 200 : 100;
    wl.uniform = fault == FaultId::kF5RehashFlagBitflip;
    auto workload =
        std::make_shared<YcsbWorkload>(wl, config_.seed ^ 0x9999);
    workload_op_ = [this, sys, workload] {
      sys->SetTime(static_cast<int64_t>(CurrentSeconds()));
      Request req = workload->Next();
      if (req.op == Request::Op::kPut) {
        expected_[req.key] = req.value;
      }
      sys->Handle(req);
    };

    switch (fault) {
      case FaultId::kF1RefcountOverflow: {
        auto keys = CollidingKeys(options.hashtable_buckets, 3, "f1seed");
        trigger_ = [this, sys, keys] {
          sys->Handle(MakePut(keys[0], "vvvv"));
          sys->Handle(MakePut(keys[1], "vvvv"));
          for (int i = 0; i < 255; i++) {
            sys->Handle(MakeOp(Request::Op::kHold, keys[0]));
          }
          sys->Handle(MakePut(keys[2], "vv"));
        };
        bug_check_ = [this, sys, keys] { sys->Handle(MakeGet(keys[0])); };
        break;
      }
      case FaultId::kF2FlushAllLogic: {
        trigger_ = [this, sys] {
          Request flush = MakeOp(Request::Op::kFlushAll, "");
          flush.int_arg = 600;  // scheduled 10 minutes into the future
          sys->Handle(flush);
        };
        bug_check_ = [this, sys] {
          if (!expected_.empty()) {
            sys->Handle(MakeGet(expected_.begin()->first, true));
          }
        };
        break;
      }
      case FaultId::kF3HashtableLockRace: {
        // The race happens naturally, early in the run.
        trigger_at_ = kSecond * static_cast<int64_t>(20 + rng_.NextBelow(35));
        auto keys = CollidingKeys(options.hashtable_buckets, 3, "f3seed");
        trigger_ = [this, sys, keys] {
          sys->Handle(MakePut(keys[0], "base"));
          sys->OpenRaceWindow();
          sys->Handle(MakePut(keys[1], "dropped"));
          sys->Handle(MakePut(keys[2], "winner"));
        };
        bug_check_ = [this, sys, keys] {
          sys->Handle(MakeGet(keys[1], true));
        };
        break;
      }
      case FaultId::kF4AppendIntOverflow: {
        bug_check_every_ops_ = 1;  // the appending client reads back at once
        trigger_ = [this, sys] {
          // Appendee and victim land in the same size class, making them
          // buddy-adjacent in the heap; the overrunning copy clobbers the
          // victim's item fields.
          const std::string victim_value(210, 'v');
          sys->Handle(MakePut("appendee", std::string(200, 'a')));
          sys->Handle(MakePut("f4victim", victim_value));
          sys->Handle(
              MakeOp(Request::Op::kAppend, "appendee", std::string(100, 'b')));
          expected_["f4victim"] = victim_value;
        };
        bug_check_ = [this, sys] { sys->Handle(MakeGet("f4victim")); };
        value_check_ = [this, sys] {
          // A missing victim is data loss (a coarse restore may predate
          // it); a *wrong* value is an inconsistency.
          Response r = sys->Handle(MakeGet("f4victim"));
          if (r.found && r.value != std::string(210, 'v')) {
            return Corruption("victim value damaged");
          }
          return OkStatus();
        };
        break;
      }
      case FaultId::kF5RehashFlagBitflip: {
        // Every lookup goes through the flag: wrongful misses surface fast.
        bug_check_every_ops_ = 120;
        // The flip usually lands in the first minute, before pmCRIU's first
        // snapshot (paper: 1/10 success probability for pmCRIU).
        trigger_at_ = rng_.NextBool(0.9)
                          ? kSecond * static_cast<int64_t>(
                                          15 + rng_.NextBelow(40))
                          : kSecond * static_cast<int64_t>(
                                          70 + rng_.NextBelow(80));
        trigger_ = [sys] { sys->InjectRehashFlagBitFlip(); };
        bug_check_ = [this, sys] {
          if (!expected_.empty()) {
            sys->Handle(MakeGet(expected_.begin()->first, true));
          }
        };
        break;
      }
      default:
        break;
    }
    return;
  }

  // --- Redis faults (f6-f8) ---------------------------------------------------
  if (fault == FaultId::kF6ListpackOverflow ||
      fault == FaultId::kF7RefcountLogicBug ||
      fault == FaultId::kF8SlowlogLeak) {
    RedisOptions options;
    if (fault == FaultId::kF6ListpackOverflow) {
      options.dict_buckets = 256;  // production-sized dict
    }
    if (fault == FaultId::kF8SlowlogLeak) {
      // Leak rate relative to the snapshot interval: with probability ~0.7
      // the pool fills before pmCRIU's first snapshot (paper: 4/10
      // successes).
      options.pool_size =
          rng_.NextBool(0.71) ? 160 * 1024 : 1 * 1024 * 1024;
    }
    auto rd = std::make_unique<RedisMini>(options);
    RedisMini* sys = rd.get();
    system_ = std::move(rd);

    YcsbConfig wl;
    // f8 bounds the live-item space so the leak dominates pool usage; the
    // other Redis faults run a production-sized key space.
    wl.key_space = fault == FaultId::kF8SlowlogLeak ? 50 : 250;
    wl.value_size = fault == FaultId::kF8SlowlogLeak ? 400 : 16;
    auto workload =
        std::make_shared<YcsbWorkload>(wl, config_.seed ^ 0x7777);
    auto push_count = std::make_shared<int>(0);
    workload_op_ = [this, sys, workload, push_count, fault] {
      if (fault == FaultId::kF6ListpackOverflow && *push_count < 45 &&
          rng_.NextBool(0.1)) {
        (*push_count)++;
        sys->Handle(
            MakeOp(Request::Op::kListPush, "biglist", std::string(88, 'x')));
        return;
      }
      Request req = workload->Next();
      if (req.op == Request::Op::kPut) {
        expected_[req.key] = req.value;
      }
      sys->Handle(req);
    };

    switch (fault) {
      case FaultId::kF6ListpackOverflow: {
        // Clients read the list periodically.
        bug_check_every_ops_ = 800;
        trigger_ = [this, sys] {
          // One more large element pushes the listpack across the 4 KiB
          // boundary; the insertion succeeds but the size header is
          // corrupted (paper 2.3). Nothing reads the listpack yet.
          sys->Handle(MakeOp(Request::Op::kListPush, "biglist",
                             std::string(200, 'y')));
        };
        bug_check_ = [this, sys] {
          sys->Handle(MakeOp(Request::Op::kListRead, "biglist"));
        };
        break;
      }
      case FaultId::kF7RefcountLogicBug: {
        // The shared object is long-lived production state created during
        // the workload (so coarse snapshots contain it); the trigger is
        // only the delete request.
        auto setup_done = std::make_shared<bool>(false);
        auto base_op = workload_op_;
        workload_op_ = [this, sys, setup_done, base_op] {
          if (!*setup_done) {
            *setup_done = true;
            sys->Handle(MakePut("f7shared", "sharedval"));
            (void)sys->Share("f7shared", "f7alias");
          }
          base_op();
        };
        trigger_ = [this, sys] {
          sys->Handle(MakeOp(Request::Op::kDelete, "f7shared"));
        };
        bug_check_ = [this, sys] { sys->Handle(MakeGet("f7alias", true)); };
        value_check_ = [this, sys] {
          Response r = sys->Handle(MakeGet("f7alias"));
          if (r.found && r.value != "sharedval") {
            return Corruption("shared value damaged after recovery");
          }
          return OkStatus();
        };
        break;
      }
      case FaultId::kF8SlowlogLeak: {
        // Happens naturally: every large put is slow-logged and pruning
        // leaks. No external trigger.
        trigger_at_ = config_.run_duration + 1;  // never fires
        leak_fault_ = true;
        leak_guid_ = kGuidRdSlowlogAlloc;
        trigger_ = [] {};
        // Re-run the failing request: a slow put that must allocate both a
        // value object and a slowlog entry.
        bug_check_ = [this, sys] {
          sys->Handle(MakePut("user0", std::string(400, 'v')));
        };
        break;
      }
      default:
        break;
    }
    return;
  }

  // --- CCEH (f9) ---------------------------------------------------------------
  if (fault == FaultId::kF9DirectoryDoubling) {
    auto cc = std::make_unique<Cceh>();
    Cceh* sys = cc.get();
    system_ = std::move(cc);

    auto inserts = std::make_shared<InsertWorkload>("cckey", 8,
                                                    config_.seed ^ 0x3333);
    workload_op_ = [sys, inserts] { sys->Handle(inserts->Next()); };
    // The workload is pure insertion: the very next requests after the
    // crash walk into the inconsistent directory.
    bug_check_every_ops_ = 1;
    trigger_ = [this, sys, inserts] {
      // The untimely crash: inside the crash window the doubling's global-
      // depth clwb has not executed yet. Drive insertions until a doubling
      // happens, then crash-restart: the stale durable depth now governs.
      sys->OpenCrashWindow();
      const uint64_t depth = sys->global_depth();
      for (int i = 0; i < 20000 && sys->global_depth() == depth; i++) {
        sys->Handle(inserts->Next());
      }
      for (int i = 0; i < 5; i++) {
        sys->Handle(inserts->Next());
      }
      sys->CloseCrashWindow();
      (void)system_->Restart();
    };
    bug_check_ = [sys] {
      // The production workload eventually inserts into a full segment
      // whose local depth exceeds the stale global depth; fast-forward by
      // filling exactly those inconsistent segments until one is full (or
      // the structure proves consistent).
      for (int i = 0; i < 12 && !sys->last_fault().has_value(); i++) {
        auto stuck = sys->FindKeyForInconsistentSegment(/*require_full=*/true);
        if (stuck.ok()) {
          sys->Handle(MakePut(*stuck, "p"));
          return;
        }
        auto filler =
            sys->FindKeyForInconsistentSegment(/*require_full=*/false);
        if (!filler.ok()) {
          sys->Handle(MakePut("ccprobe", "p"));  // structure is consistent
          return;
        }
        sys->Handle(MakePut(*filler, "p"));
      }
    };
    return;
  }

  // --- Pelikan (f10, f11) -------------------------------------------------------
  if (fault == FaultId::kF10ValueLenOverflow ||
      fault == FaultId::kF11NullStats) {
    auto pl = std::make_unique<PelikanMini>();
    PelikanMini* sys = pl.get();
    system_ = std::move(pl);

    auto inserts = std::make_shared<InsertWorkload>("plkey", 24,
                                                    config_.seed ^ 0x5555);
    workload_op_ = [this, sys, inserts] {
      Request req = inserts->Next();
      expected_[req.key] = req.value;
      sys->Handle(req);
    };

    if (fault == FaultId::kF10ValueLenOverflow) {
      bug_check_every_ops_ = 1;  // the oversized put's client reads back
      trigger_ = [this, sys] {
        // Same size class -> buddy-adjacent blocks.
        const std::string victim_value(90, 'v');
        sys->Handle(MakePut("pl_a", std::string(90, 'a')));
        sys->Handle(MakePut("pl_victim", victim_value));
        sys->Handle(MakeOp(Request::Op::kDelete, "pl_a"));
        // Reuses pl_a's freed block whole (the wrapped length under-sizes
        // the request); the 300-byte copy overruns into pl_victim.
        sys->Handle(MakePut("pl_big", std::string(300, 'b')));
        expected_["pl_victim"] = victim_value;
      };
      bug_check_ = [this, sys] { sys->Handle(MakeGet("pl_victim")); };
      value_check_ = [this, sys] {
        Response r = sys->Handle(MakeGet("pl_victim"));
        if (r.found && r.value != std::string(90, 'v')) {
          return Corruption("victim value damaged");
        }
        return OkStatus();
      };
    } else {
      trigger_ = [this, sys] {
        sys->Handle(MakeOp(Request::Op::kStats, "reset"));
      };
      bug_check_ = [this, sys] {
        sys->Handle(MakeOp(Request::Op::kStats, "show"));
      };
    }
    return;
  }

  // --- PMEMKV (f12) --------------------------------------------------------------
  if (fault == FaultId::kF12AsyncLazyFree) {
    auto kv = std::make_unique<PmemkvMini>();
    PmemkvMini* sys = kv.get();
    system_ = std::move(kv);
    leak_fault_ = true;
    leak_guid_ = kGuidKvAllocSite;

    auto counter = std::make_shared<uint64_t>(0);
    workload_op_ = [this, sys, counter] {
      // Put/delete churn: every deleted entry waits on the volatile
      // deferred-free queue that never runs with f12 armed.
      const uint64_t i = (*counter)++;
      const std::string key = "kvchurn" + std::to_string(i);
      sys->Handle(MakePut(key, std::string(96, 'v')));
      sys->Handle(MakeOp(Request::Op::kDelete, key));
      if (i % 50 == 0) {
        // Periodic restarts lose the queue even if the worker were to run.
        (void)system_->Restart();
      }
    };
    trigger_at_ = config_.run_duration + 1;  // manifests on its own
    trigger_ = [] {};
    bug_check_ = [this, sys] {
      sys->Handle(MakePut("kvprobe", std::string(96, 'p')));
      sys->Handle(MakeOp(Request::Op::kDelete, "kvprobe"));
    };
    return;
  }

  assert(false && "unhandled fault id");
}

void FaultExperiment::WorkloadStep() {
  workload_op_();
  // The live-telemetry throughput series: the sampler scrapes this counter
  // into per-tick deltas, which is the recovery curve the TimelineAnalyzer
  // reads (throughput_series = "harness.op.count").
  ARTHAS_COUNTER_ADD("harness.op.count", 1);
}

void FaultExperiment::ApplyTrigger() {
  RecordFaultInjection(DescriptorFor(config_.fault));
  ARTHAS_TIMELINE_MARK("fault_injected");
  trigger_();
  triggered_ = true;
}

void FaultExperiment::BugCheck() { bug_check_(); }

RunObservation FaultExperiment::Reexecute() {
  RunObservation obs;
  (void)system_->Restart();
  if (!system_->last_fault().has_value()) {
    BugCheck();
  }
  if (!system_->last_fault().has_value() && leak_fault_) {
    auto leak = detector_.CheckPmUsage(system_->pool(), leak_guid_);
    if (leak.has_value()) {
      obs.fault = leak;
    }
  }
  if (system_->last_fault().has_value()) {
    obs.fault = system_->last_fault();
  }
  obs.pm_used_bytes = system_->pool().stats().used_bytes;
  obs.item_count = system_->ItemCount();
  return obs;
}

bool FaultExperiment::EvaluateConsistency() {
  // (1) Pool-level checks (the pmempool-check analogue) and the system's
  // domain invariants.
  if (Status s = system_->CheckConsistency(); !s.ok()) {
    ARTHAS_LOG(Debug) << "consistency: domain check failed: " << s.ToString();
    return false;
  }
  // (2) Value verification for the keys the fault touched.
  if (Status s = value_check_(); !s.ok()) {
    ARTHAS_LOG(Debug) << "consistency: value check failed: " << s.ToString();
    return false;
  }
  // (3) Stability workload: 20 virtual minutes of mixed requests, including
  // deletions of pre-existing keys (this is where f4's wrapped slab size
  // occasionally aborts under purge mode).
  std::vector<std::string> known;
  for (const auto& [key, value] : expected_) {
    known.push_back(key);
  }
  for (int i = 0; i < 200; i++) {
    clock_.Advance(6 * kSecond);
    if (auto* mc = dynamic_cast<MemcachedMini*>(system_.get())) {
      mc->SetTime(static_cast<int64_t>(CurrentSeconds()));
    }
    if (!known.empty() && rng_.NextBool(0.1)) {
      const std::string& key = known[rng_.NextBelow(known.size())];
      system_->Handle(MakeOp(Request::Op::kDelete, key));
    } else {
      const std::string key = "stab" + std::to_string(i);
      system_->Handle(MakePut(key, "stabval"));
      system_->Handle(MakeGet(key));
    }
    if (system_->last_fault().has_value()) {
      ARTHAS_LOG(Debug) << "consistency: stability workload faulted: "
                        << system_->last_fault()->message;
      return false;
    }
  }
  if (Status s = system_->CheckConsistency(); !s.ok()) {
    ARTHAS_LOG(Debug) << "consistency: post-stability check failed: "
                      << s.ToString();
    return false;
  }
  return true;
}

ExperimentResult FaultExperiment::Run() {
  const obs::RegistrySnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  ARTHAS_NAMED_SPAN(cell_span, "harness.cell");
  cell_span.AddAttr("fault", std::string(DescriptorFor(config_.fault).label));
  cell_span.AddAttr("solution", std::string(SolutionName(config_.solution)));
  ARTHAS_COUNTER_ADD("harness.cell.count", 1);

  ExperimentResult result = RunInner();

  if (checkpoint_ != nullptr) {
    // Exercise the checkpoint log's persistence path once per cell so its
    // serialize latency (Section 6.4 overhead accounting) always has
    // samples; Serialize() records checkpoint.serialize.ns itself.
    const std::vector<uint8_t> image = checkpoint_->Serialize();
    ARTHAS_GAUGE_SET("checkpoint.image.bytes", image.size());
  }

  cell_span.AddAttr("recovered", std::string(result.recovered ? "yes" : "no"));
  CellRecord record;
  record.fault = DescriptorFor(config_.fault).label;
  record.solution = SolutionName(config_.solution);
  record.substrate = SubstrateKindName(config_.substrate);
  record.recovered = result.recovered;
  record.attempts = result.attempts;
  record.mitigation_time_us = result.mitigation_time;
  // Post-mortem: replay the flight recorder against this cell's device and
  // publish the report (the artifact writer picks up the latest one). With
  // the recorder compiled out or no crash in the cell, present stays false.
  obs::ForensicsReport forensics =
      obs::AnalyzeCrash(system_->pool().device());
  if (forensics.present) {
    record.forensics_lost_lines = forensics.lost_lines.size();
    record.forensics_open_txs = forensics.open_txs.size();
    record.forensics_open_sections = forensics.open_sections.size();
    record.forensics_summary = forensics.summary;
    obs::SetLatestForensics(std::move(forensics));
  }
  record.counter_deltas =
      obs::CounterDeltas(before, obs::MetricsRegistry::Global().Snapshot());
  RecordCell(std::move(record));
  return result;
}

ExperimentResult FaultExperiment::RunInner() {
  ExperimentResult result;
  result.fault = config_.fault;
  result.solution = config_.solution;

  BuildScript();
  system_->ArmFault(config_.fault);

  // Substrate selection. pmCRIU cells under the default substrate keep
  // today's uninstrumented run (whole-image snapshots need no checkpoint
  // log); every other combination attaches the configured substrate, and
  // checkpoint_ borrows its log (null under FASE — consumers that need a
  // log refuse instead of reaching for one that does not exist).
  if (config_.substrate != SubstrateKind::kArthasCheckpoint ||
      config_.solution != Solution::kPmCriu) {
    SubstrateOptions options;
    options.checkpoint_max_versions = config_.reactor.max_versions;
    substrate_ = MakeSubstrate(config_.substrate, options);
    if (Status s = substrate_->Attach(system_->pool()); !s.ok()) {
      result.detail = "substrate attach failed: " + s.ToString();
      return result;
    }
    system_->set_substrate(substrate_.get());
    checkpoint_ = substrate_->checkpoint_log();
  }
  if (config_.solution == Solution::kPmCriu) {
    pmcriu_ =
        std::make_unique<PmCriu>(system_->pool().device(), config_.pmcriu);
  }

  // Live-telemetry probes, evaluated on the sampler thread each tick. Both
  // read lock-free / latch-protected state, so they are safe against the
  // single-threaded experiment loop. The RAII guard unregisters them on
  // every exit path (after UnregisterProbe returns, the sampler never
  // calls the lambdas again, so the captured pointers cannot dangle).
  struct ProbeGuard {
    obs::ProbeId pending = obs::kNoProbe;
    obs::ProbeId fault = obs::kNoProbe;
    ~ProbeGuard() {
      ARTHAS_TELEMETRY_UNPROBE(pending);
      ARTHAS_TELEMETRY_UNPROBE(fault);
    }
  } probes;
  probes.pending = ARTHAS_TELEMETRY_PROBE(
      "harness.pending.lines", obs::ProbeKind::kGauge,
      [device = &system_->pool().device()] {
        return static_cast<double>(device->PendingLineCount());
      });
  probes.fault = ARTHAS_TELEMETRY_PROBE(
      "harness.fault.latched", obs::ProbeKind::kGauge,
      [system = system_.get()] {
        return system->last_fault().has_value() ? 1.0 : 0.0;
      });

  // --- Run the workload; trigger half-way; detect the failure. ---------------
  std::optional<FaultInfo> first_fault;
  while (clock_.Now() < config_.run_duration) {
    clock_.Advance(config_.op_interval);
    if (pmcriu_ != nullptr) {
      pmcriu_->MaybeSnapshot(clock_.Now(), system_->ItemCount());
    }
    if (!triggered_ && clock_.Now() >= trigger_at_) {
      ApplyTrigger();
      result.triggered = true;
    }
    if (!system_->last_fault().has_value()) {
      WorkloadStep();
      if (triggered_) {
        op_index_++;  // ops since the trigger drive the bug-check cadence
      }
    }
    if (triggered_ && !system_->last_fault().has_value() &&
        op_index_ % bug_check_every_ops_ == 0) {
      BugCheck();
    }
    if (!system_->last_fault().has_value() && leak_fault_) {
      auto leak = detector_.CheckPmUsage(system_->pool(), leak_guid_);
      if (leak.has_value()) {
        first_fault = leak;
        if (!triggered_) {
          ARTHAS_TIMELINE_MARK("fault_injected");  // manifested on its own
        }
        result.triggered = true;
        break;
      }
    }
    if (system_->last_fault().has_value()) {
      first_fault = system_->last_fault();
      if (!triggered_) {
        ARTHAS_TIMELINE_MARK("fault_injected");  // manifested on its own
      }
      result.triggered = true;  // natural faults count as triggered
      break;
    }
  }
  if (!first_fault.has_value()) {
    result.detail = "failure did not manifest";
    return result;
  }
  result.items_before = system_->ItemCount();
  const uint64_t persists_at_failure =
      system_->pool().device().stats().persists;
  if (checkpoint_ != nullptr) {
    result.checkpoint_updates_total = checkpoint_->stats().records;
  }

  // Detection + hard-failure confirmation: the symptom must recur across a
  // restart with a similar fingerprint (Section 4.3).
  (void)detector_.Observe(first_fault);
  ARTHAS_TIMELINE_MARK("detector_fired");
  result.detected = true;
  RunObservation confirm = Reexecute();
  if (detector_.Observe(confirm.fault) !=
      Detector::Assessment::kSuspectedHardFailure) {
    // The restart cleared it: a soft failure after all.
    result.recovered = !confirm.fault.has_value();
    result.detail = "failure did not recur; plain restart sufficed";
    return result;
  }
  const FaultInfo hard_fault = *confirm.fault;

  // --- Mitigate. ---------------------------------------------------------------
  auto reexecute = [this]() { return Reexecute(); };
  const uint64_t reverted_before =
      checkpoint_ != nullptr ? checkpoint_->stats().reverted_updates.load()
                             : 0;

  switch (config_.solution) {
    case Solution::kArthas: {
      reactor_ = std::make_unique<Reactor>(system_->ir_model(),
                                           system_->guid_registry());
      MitigationOutcome outcome =
          reactor_->Mitigate(hard_fault, system_->tracer(), *substrate_,
                             *system_, reexecute, clock_, config_.reactor);
      result.recovered = outcome.recovered;
      result.timed_out = outcome.timed_out;
      result.empty_plan = outcome.empty_plan;
      result.reversion_refused = outcome.reversion_refused;
      result.attempts = outcome.reexecutions;
      result.mitigation_time = outcome.elapsed;
      result.leaked_objects_freed = outcome.freed_leak_objects;
      result.detail = outcome.detail;
      break;
    }
    case Solution::kPmCriu: {
      PmCriuOutcome outcome = pmcriu_->Mitigate(reexecute, clock_);
      result.recovered = outcome.recovered;
      result.attempts = outcome.restores;
      result.mitigation_time = outcome.elapsed;
      result.detail = outcome.recovered
                          ? "restored snapshot"
                          : "no snapshot restored the system";
      if (outcome.recovered && persists_at_failure > 0) {
        // Coarse restore discards every state update made after the
        // restored image was taken.
        const uint64_t kept =
            std::min(outcome.restored_persist_count, persists_at_failure);
        result.discarded_fraction =
            static_cast<double>(persists_at_failure - kept) /
            static_cast<double>(persists_at_failure);
      }
      break;
    }
    case Solution::kArCkpt: {
      if (checkpoint_ == nullptr) {
        // Time-ordered reversion needs the checkpoint log's history; under
        // FASE there is none. Refuse cleanly and probe one plain restart
        // (whose recovery already rolled incomplete sections back).
        result.reversion_refused = true;
        clock_.Advance(config_.reactor.reexecution_delay);
        const RunObservation obs = reexecute();
        result.attempts = 1;
        result.recovered = !obs.fault.has_value();
        result.mitigation_time = config_.reactor.reexecution_delay;
        result.detail = "reversion refused: substrate '" +
                        std::string(substrate_->name()) +
                        "' keeps no checkpoint log";
        break;
      }
      ArCkpt arckpt(config_.arckpt);
      ArCkptOutcome outcome = arckpt.Mitigate(*checkpoint_, reexecute, clock_);
      result.recovered = outcome.recovered;
      result.timed_out = outcome.timed_out;
      result.attempts = outcome.reexecutions;
      result.mitigation_time = outcome.elapsed;
      result.detail =
          outcome.timed_out ? "timed out in time-ordered reversion" : "";
      break;
    }
  }

  if (result.recovered) {
    ARTHAS_TIMELINE_MARK("reversion_done");
  }

  result.items_after = system_->ItemCount();
  if (checkpoint_ != nullptr) {
    result.checkpoint_updates_discarded =
        checkpoint_->stats().reverted_updates - reverted_before;
    if (result.checkpoint_updates_total > 0) {
      result.discarded_fraction =
          static_cast<double>(result.checkpoint_updates_discarded) /
          static_cast<double>(result.checkpoint_updates_total);
    }
  }

  if (result.recovered && config_.post_recovery_ops > 0) {
    // Throughput-recovery tail for the live telemetry plane: keep serving
    // the production workload so the sampler watches the rate climb back
    // to (and sustain) the pre-fault level.
    for (int i = 0; i < config_.post_recovery_ops &&
                    !system_->last_fault().has_value();
         i++) {
      clock_.Advance(config_.op_interval);
      WorkloadStep();
    }
  }

  if (config_.evaluate_consistency && result.recovered) {
    result.consistent = EvaluateConsistency();
  }
  return result;
}

ExperimentResult RunCell(FaultId fault, Solution solution, uint64_t seed,
                         ReversionMode mode, bool evaluate_consistency,
                         SubstrateKind substrate) {
  ExperimentConfig config;
  config.fault = fault;
  config.solution = solution;
  config.seed = seed;
  config.reactor.mode = mode;
  config.evaluate_consistency = evaluate_consistency;
  config.substrate = substrate;
  FaultExperiment experiment(config);
  return experiment.Run();
}

}  // namespace arthas
