# Empty dependencies file for example_leak_mitigation.
# This may be replaced when dependencies are built.
