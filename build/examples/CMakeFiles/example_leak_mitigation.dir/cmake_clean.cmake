file(REMOVE_RECURSE
  "CMakeFiles/example_leak_mitigation.dir/leak_mitigation.cpp.o"
  "CMakeFiles/example_leak_mitigation.dir/leak_mitigation.cpp.o.d"
  "example_leak_mitigation"
  "example_leak_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_leak_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
