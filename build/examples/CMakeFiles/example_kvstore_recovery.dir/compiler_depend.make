# Empty compiler generated dependencies file for example_kvstore_recovery.
# This may be replaced when dependencies are built.
