file(REMOVE_RECURSE
  "CMakeFiles/example_kvstore_recovery.dir/kvstore_recovery.cpp.o"
  "CMakeFiles/example_kvstore_recovery.dir/kvstore_recovery.cpp.o.d"
  "example_kvstore_recovery"
  "example_kvstore_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_kvstore_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
