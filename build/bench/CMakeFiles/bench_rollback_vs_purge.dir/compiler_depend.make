# Empty compiler generated dependencies file for bench_rollback_vs_purge.
# This may be replaced when dependencies are built.
