file(REMOVE_RECURSE
  "CMakeFiles/bench_rollback_vs_purge.dir/bench_rollback_vs_purge.cc.o"
  "CMakeFiles/bench_rollback_vs_purge.dir/bench_rollback_vs_purge.cc.o.d"
  "bench_rollback_vs_purge"
  "bench_rollback_vs_purge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rollback_vs_purge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
