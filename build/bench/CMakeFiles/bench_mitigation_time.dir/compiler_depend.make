# Empty compiler generated dependencies file for bench_mitigation_time.
# This may be replaced when dependencies are built.
