file(REMOVE_RECURSE
  "CMakeFiles/bench_mitigation_time.dir/bench_mitigation_time.cc.o"
  "CMakeFiles/bench_mitigation_time.dir/bench_mitigation_time.cc.o.d"
  "bench_mitigation_time"
  "bench_mitigation_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mitigation_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
