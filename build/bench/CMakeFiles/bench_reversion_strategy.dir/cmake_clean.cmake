file(REMOVE_RECURSE
  "CMakeFiles/bench_reversion_strategy.dir/bench_reversion_strategy.cc.o"
  "CMakeFiles/bench_reversion_strategy.dir/bench_reversion_strategy.cc.o.d"
  "bench_reversion_strategy"
  "bench_reversion_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reversion_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
