# Empty compiler generated dependencies file for bench_reversion_strategy.
# This may be replaced when dependencies are built.
