# Empty compiler generated dependencies file for bench_tx_granularity.
# This may be replaced when dependencies are built.
