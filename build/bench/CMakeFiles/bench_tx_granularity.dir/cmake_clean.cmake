file(REMOVE_RECURSE
  "CMakeFiles/bench_tx_granularity.dir/bench_tx_granularity.cc.o"
  "CMakeFiles/bench_tx_granularity.dir/bench_tx_granularity.cc.o.d"
  "bench_tx_granularity"
  "bench_tx_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tx_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
