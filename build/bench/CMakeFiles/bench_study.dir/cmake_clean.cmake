file(REMOVE_RECURSE
  "CMakeFiles/bench_study.dir/bench_study.cc.o"
  "CMakeFiles/bench_study.dir/bench_study.cc.o.d"
  "bench_study"
  "bench_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
