# Empty compiler generated dependencies file for bench_max_versions.
# This may be replaced when dependencies are built.
