file(REMOVE_RECURSE
  "CMakeFiles/bench_max_versions.dir/bench_max_versions.cc.o"
  "CMakeFiles/bench_max_versions.dir/bench_max_versions.cc.o.d"
  "bench_max_versions"
  "bench_max_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_max_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
