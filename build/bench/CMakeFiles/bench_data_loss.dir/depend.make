# Empty dependencies file for bench_data_loss.
# This may be replaced when dependencies are built.
