file(REMOVE_RECURSE
  "CMakeFiles/bench_data_loss.dir/bench_data_loss.cc.o"
  "CMakeFiles/bench_data_loss.dir/bench_data_loss.cc.o.d"
  "bench_data_loss"
  "bench_data_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
