file(REMOVE_RECURSE
  "CMakeFiles/bench_binary_search.dir/bench_binary_search.cc.o"
  "CMakeFiles/bench_binary_search.dir/bench_binary_search.cc.o.d"
  "bench_binary_search"
  "bench_binary_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_binary_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
