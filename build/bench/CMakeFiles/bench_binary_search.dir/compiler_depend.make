# Empty compiler generated dependencies file for bench_binary_search.
# This may be replaced when dependencies are built.
