file(REMOVE_RECURSE
  "CMakeFiles/reactor_server_test.dir/reactor_server_test.cc.o"
  "CMakeFiles/reactor_server_test.dir/reactor_server_test.cc.o.d"
  "reactor_server_test"
  "reactor_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reactor_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
