# Empty dependencies file for memcached_ops_test.
# This may be replaced when dependencies are built.
