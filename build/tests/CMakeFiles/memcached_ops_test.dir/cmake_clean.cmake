file(REMOVE_RECURSE
  "CMakeFiles/memcached_ops_test.dir/memcached_ops_test.cc.o"
  "CMakeFiles/memcached_ops_test.dir/memcached_ops_test.cc.o.d"
  "memcached_ops_test"
  "memcached_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcached_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
