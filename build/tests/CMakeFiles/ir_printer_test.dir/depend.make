# Empty dependencies file for ir_printer_test.
# This may be replaced when dependencies are built.
