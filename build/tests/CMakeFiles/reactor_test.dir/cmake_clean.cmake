file(REMOVE_RECURSE
  "CMakeFiles/reactor_test.dir/reactor_test.cc.o"
  "CMakeFiles/reactor_test.dir/reactor_test.cc.o.d"
  "reactor_test"
  "reactor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reactor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
