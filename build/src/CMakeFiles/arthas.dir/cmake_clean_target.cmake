file(REMOVE_RECURSE
  "libarthas.a"
)
