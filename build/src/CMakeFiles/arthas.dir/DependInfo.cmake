
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dominators.cc" "src/CMakeFiles/arthas.dir/analysis/dominators.cc.o" "gcc" "src/CMakeFiles/arthas.dir/analysis/dominators.cc.o.d"
  "/root/repo/src/analysis/pdg.cc" "src/CMakeFiles/arthas.dir/analysis/pdg.cc.o" "gcc" "src/CMakeFiles/arthas.dir/analysis/pdg.cc.o.d"
  "/root/repo/src/analysis/pm_variables.cc" "src/CMakeFiles/arthas.dir/analysis/pm_variables.cc.o" "gcc" "src/CMakeFiles/arthas.dir/analysis/pm_variables.cc.o.d"
  "/root/repo/src/analysis/pointer_analysis.cc" "src/CMakeFiles/arthas.dir/analysis/pointer_analysis.cc.o" "gcc" "src/CMakeFiles/arthas.dir/analysis/pointer_analysis.cc.o.d"
  "/root/repo/src/analysis/slicer.cc" "src/CMakeFiles/arthas.dir/analysis/slicer.cc.o" "gcc" "src/CMakeFiles/arthas.dir/analysis/slicer.cc.o.d"
  "/root/repo/src/baselines/arckpt.cc" "src/CMakeFiles/arthas.dir/baselines/arckpt.cc.o" "gcc" "src/CMakeFiles/arthas.dir/baselines/arckpt.cc.o.d"
  "/root/repo/src/baselines/pmcriu.cc" "src/CMakeFiles/arthas.dir/baselines/pmcriu.cc.o" "gcc" "src/CMakeFiles/arthas.dir/baselines/pmcriu.cc.o.d"
  "/root/repo/src/checkpoint/checkpoint_log.cc" "src/CMakeFiles/arthas.dir/checkpoint/checkpoint_log.cc.o" "gcc" "src/CMakeFiles/arthas.dir/checkpoint/checkpoint_log.cc.o.d"
  "/root/repo/src/checkpoint/checkpoint_serialize.cc" "src/CMakeFiles/arthas.dir/checkpoint/checkpoint_serialize.cc.o" "gcc" "src/CMakeFiles/arthas.dir/checkpoint/checkpoint_serialize.cc.o.d"
  "/root/repo/src/common/clock.cc" "src/CMakeFiles/arthas.dir/common/clock.cc.o" "gcc" "src/CMakeFiles/arthas.dir/common/clock.cc.o.d"
  "/root/repo/src/common/crc32.cc" "src/CMakeFiles/arthas.dir/common/crc32.cc.o" "gcc" "src/CMakeFiles/arthas.dir/common/crc32.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/arthas.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/arthas.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/arthas.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/arthas.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/arthas.dir/common/status.cc.o" "gcc" "src/CMakeFiles/arthas.dir/common/status.cc.o.d"
  "/root/repo/src/detector/detector.cc" "src/CMakeFiles/arthas.dir/detector/detector.cc.o" "gcc" "src/CMakeFiles/arthas.dir/detector/detector.cc.o.d"
  "/root/repo/src/faults/fault_ids.cc" "src/CMakeFiles/arthas.dir/faults/fault_ids.cc.o" "gcc" "src/CMakeFiles/arthas.dir/faults/fault_ids.cc.o.d"
  "/root/repo/src/faults/study.cc" "src/CMakeFiles/arthas.dir/faults/study.cc.o" "gcc" "src/CMakeFiles/arthas.dir/faults/study.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/arthas.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/arthas.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/table.cc" "src/CMakeFiles/arthas.dir/harness/table.cc.o" "gcc" "src/CMakeFiles/arthas.dir/harness/table.cc.o.d"
  "/root/repo/src/ir/ir.cc" "src/CMakeFiles/arthas.dir/ir/ir.cc.o" "gcc" "src/CMakeFiles/arthas.dir/ir/ir.cc.o.d"
  "/root/repo/src/pmem/device.cc" "src/CMakeFiles/arthas.dir/pmem/device.cc.o" "gcc" "src/CMakeFiles/arthas.dir/pmem/device.cc.o.d"
  "/root/repo/src/pmem/pool.cc" "src/CMakeFiles/arthas.dir/pmem/pool.cc.o" "gcc" "src/CMakeFiles/arthas.dir/pmem/pool.cc.o.d"
  "/root/repo/src/reactor/reactor.cc" "src/CMakeFiles/arthas.dir/reactor/reactor.cc.o" "gcc" "src/CMakeFiles/arthas.dir/reactor/reactor.cc.o.d"
  "/root/repo/src/reactor/reactor_server.cc" "src/CMakeFiles/arthas.dir/reactor/reactor_server.cc.o" "gcc" "src/CMakeFiles/arthas.dir/reactor/reactor_server.cc.o.d"
  "/root/repo/src/systems/cceh.cc" "src/CMakeFiles/arthas.dir/systems/cceh.cc.o" "gcc" "src/CMakeFiles/arthas.dir/systems/cceh.cc.o.d"
  "/root/repo/src/systems/memcached_mini.cc" "src/CMakeFiles/arthas.dir/systems/memcached_mini.cc.o" "gcc" "src/CMakeFiles/arthas.dir/systems/memcached_mini.cc.o.d"
  "/root/repo/src/systems/pelikan_mini.cc" "src/CMakeFiles/arthas.dir/systems/pelikan_mini.cc.o" "gcc" "src/CMakeFiles/arthas.dir/systems/pelikan_mini.cc.o.d"
  "/root/repo/src/systems/pm_system.cc" "src/CMakeFiles/arthas.dir/systems/pm_system.cc.o" "gcc" "src/CMakeFiles/arthas.dir/systems/pm_system.cc.o.d"
  "/root/repo/src/systems/pmemkv_mini.cc" "src/CMakeFiles/arthas.dir/systems/pmemkv_mini.cc.o" "gcc" "src/CMakeFiles/arthas.dir/systems/pmemkv_mini.cc.o.d"
  "/root/repo/src/systems/redis_mini.cc" "src/CMakeFiles/arthas.dir/systems/redis_mini.cc.o" "gcc" "src/CMakeFiles/arthas.dir/systems/redis_mini.cc.o.d"
  "/root/repo/src/systems/system_base.cc" "src/CMakeFiles/arthas.dir/systems/system_base.cc.o" "gcc" "src/CMakeFiles/arthas.dir/systems/system_base.cc.o.d"
  "/root/repo/src/trace/guid_registry.cc" "src/CMakeFiles/arthas.dir/trace/guid_registry.cc.o" "gcc" "src/CMakeFiles/arthas.dir/trace/guid_registry.cc.o.d"
  "/root/repo/src/trace/tracer.cc" "src/CMakeFiles/arthas.dir/trace/tracer.cc.o" "gcc" "src/CMakeFiles/arthas.dir/trace/tracer.cc.o.d"
  "/root/repo/src/workload/ycsb.cc" "src/CMakeFiles/arthas.dir/workload/ycsb.cc.o" "gcc" "src/CMakeFiles/arthas.dir/workload/ycsb.cc.o.d"
  "/root/repo/src/workload/zipfian.cc" "src/CMakeFiles/arthas.dir/workload/zipfian.cc.o" "gcc" "src/CMakeFiles/arthas.dir/workload/zipfian.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
