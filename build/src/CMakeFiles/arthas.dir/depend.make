# Empty dependencies file for arthas.
# This may be replaced when dependencies are built.
